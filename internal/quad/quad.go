// Package quad provides the numerical-integration and interpolation
// routines used by the constant-time leakage estimators: adaptive Simpson
// quadrature (1-D), Gauss–Legendre panels, tensor-product 2-D integration
// (Eq. 20 of the paper), and natural cubic splines for tabulated functions.
package quad

import (
	"fmt"
	"math"
)

// Func1D is a scalar function of one variable.
type Func1D func(x float64) float64

// Func2D is a scalar function of two variables.
type Func2D func(x, y float64) float64

// maxSimpsonDepth bounds adaptive recursion; 2^30 panels is far beyond any
// tolerance achievable in float64.
const maxSimpsonDepth = 30

// AdaptiveSimpson integrates f over [a, b] to the requested absolute
// tolerance using adaptive Simpson quadrature with Richardson correction.
// The interval is pre-split into a fixed number of panels so that narrow
// features well inside [a, b] cannot be missed by the initial coarse
// sampling of a single top-level panel.
func AdaptiveSimpson(f Func1D, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const prePanels = 16
	h := (b - a) / prePanels
	total := 0.0
	for i := 0; i < prePanels; i++ {
		pa := a + float64(i)*h
		pb := pa + h
		fa, fm, fb := f(pa), f((pa+pb)/2), f(pb)
		whole := simpson(pa, pb, fa, fm, fb)
		total += adaptiveAux(f, pa, pb, fa, fm, fb, whole, tol/prePanels, maxSimpsonDepth)
	}
	return total
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveAux(f Func1D, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveAux(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveAux(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// gauss-Legendre abscissas/weights on [-1,1], 16 points (symmetric halves).
var glx = []float64{
	0.0950125098376374, 0.2816035507792589, 0.4580167776572274, 0.6178762444026438,
	0.7554044083550030, 0.8656312023878318, 0.9445750230732326, 0.9894009349916499,
}

var glw = []float64{
	0.1894506104550685, 0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
	0.1246289712555339, 0.0951585116824928, 0.0622535239386479, 0.0271524594117541,
}

// GaussLegendre16 integrates f over [a, b] with a single 16-point
// Gauss–Legendre rule — exact for polynomials up to degree 31.
func GaussLegendre16(f Func1D, a, b float64) float64 {
	c := (a + b) / 2
	h := (b - a) / 2
	s := 0.0
	for i := range glx {
		s += glw[i] * (f(c+h*glx[i]) + f(c-h*glx[i]))
	}
	return s * h
}

// GaussLegendrePanels integrates f over [a, b] split into n equal panels,
// each handled by the 16-point rule.
func GaussLegendrePanels(f Func1D, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	s := 0.0
	for i := 0; i < n; i++ {
		s += GaussLegendre16(f, a+float64(i)*h, a+float64(i+1)*h)
	}
	return s
}

// Integrate2D integrates f over the rectangle [ax,bx]×[ay,by] using a
// tensor-product of panelled 16-point Gauss–Legendre rules with nx×ny
// panels. It is the workhorse for Eq. (20), whose integrand (a product of
// tent functions and a smooth correlation) is well resolved by moderate
// panel counts; accuracy is validated against the exact linear-time sum in
// the estimator tests.
func Integrate2D(f Func2D, ax, bx, ay, by float64, nx, ny int) float64 {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	outer := func(x float64) float64 {
		return GaussLegendrePanels(func(y float64) float64 { return f(x, y) }, ay, by, ny)
	}
	return GaussLegendrePanels(outer, ax, bx, nx)
}

// Spline is a natural cubic spline through a set of strictly increasing
// knots. Evaluation outside the knot range is clamped linear extrapolation
// from the boundary derivative.
type Spline struct {
	xs, ys []float64
	y2     []float64 // second derivatives at knots
}

// NewSpline builds a natural cubic spline. xs must be strictly increasing
// and len(xs) == len(ys) ≥ 2.
func NewSpline(xs, ys []float64) (*Spline, error) {
	n := len(xs)
	if n != len(ys) {
		return nil, fmt.Errorf("quad: spline length mismatch %d vs %d", n, len(ys))
	}
	if n < 2 {
		return nil, fmt.Errorf("quad: spline needs ≥2 knots, got %d", n)
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("quad: spline knots not strictly increasing at %d (%g ≤ %g)",
				i, xs[i], xs[i-1])
		}
	}
	s := &Spline{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		y2: make([]float64, n),
	}
	// Tridiagonal solve for natural boundary conditions (y2[0]=y2[n-1]=0).
	u := make([]float64, n)
	for i := 1; i < n-1; i++ {
		sig := (xs[i] - xs[i-1]) / (xs[i+1] - xs[i-1])
		p := sig*s.y2[i-1] + 2
		s.y2[i] = (sig - 1) / p
		u[i] = (ys[i+1]-ys[i])/(xs[i+1]-xs[i]) - (ys[i]-ys[i-1])/(xs[i]-xs[i-1])
		u[i] = (6*u[i]/(xs[i+1]-xs[i-1]) - sig*u[i-1]) / p
	}
	for i := n - 2; i >= 0; i-- {
		s.y2[i] = s.y2[i]*s.y2[i+1] + u[i]
	}
	return s, nil
}

// Eval evaluates the spline at x. Outside the knot range, the boundary cubic
// segment's linear tangent is used (clamped extrapolation).
func (s *Spline) Eval(x float64) float64 {
	n := len(s.xs)
	if x <= s.xs[0] {
		d := s.derivAtKnot(0)
		return s.ys[0] + d*(x-s.xs[0])
	}
	if x >= s.xs[n-1] {
		d := s.derivAtKnot(n - 1)
		return s.ys[n-1] + d*(x-s.xs[n-1])
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.xs[mid] > x {
			hi = mid
		} else {
			lo = mid
		}
	}
	h := s.xs[hi] - s.xs[lo]
	a := (s.xs[hi] - x) / h
	b := (x - s.xs[lo]) / h
	return a*s.ys[lo] + b*s.ys[hi] +
		((a*a*a-a)*s.y2[lo]+(b*b*b-b)*s.y2[hi])*h*h/6
}

// derivAtKnot returns the spline first derivative at knot i (i = 0 or n−1).
func (s *Spline) derivAtKnot(i int) float64 {
	n := len(s.xs)
	if i == 0 {
		h := s.xs[1] - s.xs[0]
		return (s.ys[1]-s.ys[0])/h - h/6*(2*s.y2[0]+s.y2[1])
	}
	h := s.xs[n-1] - s.xs[n-2]
	return (s.ys[n-1]-s.ys[n-2])/h + h/6*(s.y2[n-2]+2*s.y2[n-1])
}

// Min returns the first knot position.
func (s *Spline) Min() float64 { return s.xs[0] }

// Max returns the last knot position.
func (s *Spline) Max() float64 { return s.xs[len(s.xs)-1] }

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
