package quad

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdaptiveSimpsonPolynomials(t *testing.T) {
	cases := []struct {
		name string
		f    Func1D
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 4, 8},
		{"cubic", func(x float64) float64 { return x * x * x }, 0, 2, 4},
		{"sin", math.Sin, 0, math.Pi, 2},
		{"gaussian", func(x float64) float64 {
			return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		}, -8, 8, 1},
		{"reversed", func(x float64) float64 { return 1 }, 2, 0, -2},
	}
	for _, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-12)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: got %.12g, want %g", c.name, got, c.want)
		}
	}
	if AdaptiveSimpson(math.Sin, 1, 1, 1e-9) != 0 {
		t.Errorf("zero-width interval should integrate to 0")
	}
}

func TestAdaptiveSimpsonSharpPeak(t *testing.T) {
	// Narrow Gaussian inside a wide interval exercises the adaptivity.
	s := 0.001
	f := func(x float64) float64 {
		z := (x - 0.3) / s
		return math.Exp(-0.5*z*z) / (s * math.Sqrt(2*math.Pi))
	}
	got := AdaptiveSimpson(f, 0, 1, 1e-10)
	if math.Abs(got-1) > 1e-6 {
		t.Errorf("sharp peak integral = %.9g, want 1", got)
	}
}

func TestGaussLegendre16(t *testing.T) {
	// Exact for polynomials up to degree 31.
	f := func(x float64) float64 { return math.Pow(x, 9) }
	got := GaussLegendre16(f, 0, 1)
	if math.Abs(got-0.1) > 1e-13 {
		t.Errorf("x^9: got %.15g, want 0.1", got)
	}
	got = GaussLegendrePanels(math.Cos, 0, math.Pi/2, 4)
	if math.Abs(got-1) > 1e-13 {
		t.Errorf("cos panels: got %.15g, want 1", got)
	}
	if got := GaussLegendrePanels(math.Cos, 0, 1, 0); math.Abs(got-math.Sin(1)) > 1e-12 {
		t.Errorf("n<1 clamped to 1 panel: got %g", got)
	}
}

func TestIntegrate2D(t *testing.T) {
	// ∫∫ x·y over [0,1]² = 1/4.
	got := Integrate2D(func(x, y float64) float64 { return x * y }, 0, 1, 0, 1, 2, 2)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("xy: got %.15g, want 0.25", got)
	}
	// ∫∫ exp(-(x²+y²)) over [-5,5]² = π·erf(5)² ≈ π.
	got = Integrate2D(func(x, y float64) float64 { return math.Exp(-x*x - y*y) },
		-5, 5, -5, 5, 8, 8)
	if math.Abs(got-math.Pi) > 1e-8 {
		t.Errorf("gaussian 2d: got %.12g, want π", got)
	}
	// Tent-function integrand, the exact shape of Eq. (20):
	// ∫₀ᵂ∫₀ᴴ (W−x)(H−y) dy dx = W²H²/4.
	W, H := 3.0, 2.0
	got = Integrate2D(func(x, y float64) float64 { return (W - x) * (H - y) },
		0, W, 0, H, 1, 1)
	if math.Abs(got-W*W*H*H/4) > 1e-10 {
		t.Errorf("tent: got %.12g, want %g", got, W*W*H*H/4)
	}
}

func TestSplineInterpolatesKnots(t *testing.T) {
	xs := Linspace(0, 10, 21)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(-x / 3)
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := s.Eval(x); math.Abs(got-ys[i]) > 1e-12 {
			t.Errorf("knot %d: got %g, want %g", i, got, ys[i])
		}
	}
	// Mid-knot accuracy for a smooth function. The natural boundary
	// condition limits accuracy in the first/last interval, so interior
	// points are held to a tighter tolerance than boundary ones.
	for x := 0.25; x < 10; x += 0.5 {
		want := math.Exp(-x / 3)
		tol := 1e-4
		if x < 1 || x > 9 {
			tol = 3e-3
		}
		if got := s.Eval(x); math.Abs(got-want) > tol {
			t.Errorf("x=%g: got %g, want %g", x, got, want)
		}
	}
	if s.Min() != 0 || s.Max() != 10 {
		t.Errorf("Min/Max wrong: %g, %g", s.Min(), s.Max())
	}
}

func TestSplineExtrapolationIsLinear(t *testing.T) {
	// For y = x the spline is exact and extrapolation continues the line.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Eval(-2); math.Abs(got-(-2)) > 1e-10 {
		t.Errorf("left extrapolation: got %g, want -2", got)
	}
	if got := s.Eval(5); math.Abs(got-5) > 1e-10 {
		t.Errorf("right extrapolation: got %g, want 5", got)
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := NewSpline([]float64{0, 1}, []float64{0}); err == nil {
		t.Errorf("expected length-mismatch error")
	}
	if _, err := NewSpline([]float64{0}, []float64{0}); err == nil {
		t.Errorf("expected too-few-knots error")
	}
	if _, err := NewSpline([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Errorf("expected non-increasing knots error")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if one := Linspace(3, 9, 1); len(one) != 1 || one[0] != 3 {
		t.Errorf("degenerate Linspace wrong: %v", one)
	}
}

// Property: AdaptiveSimpson and Gauss–Legendre panels agree on smooth
// random-coefficient trig-polynomials.
func TestQuadratureAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a0 := rng.NormFloat64()
		a1 := rng.NormFloat64()
		w := 1 + 3*rng.Float64()
		fn := func(x float64) float64 { return a0*math.Cos(w*x) + a1*x*x }
		lo, hi := -1.0, 2.0
		s1 := AdaptiveSimpson(fn, lo, hi, 1e-12)
		s2 := GaussLegendrePanels(fn, lo, hi, 8)
		return math.Abs(s1-s2) < 1e-9*(1+math.Abs(s1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: spline integrates to ≈ the analytic integral of the sampled
// function when knots are dense.
func TestSplineQuadratureConsistency(t *testing.T) {
	xs := Linspace(0, math.Pi, 60)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x)
	}
	s, err := NewSpline(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	got := AdaptiveSimpson(s.Eval, 0, math.Pi, 1e-10)
	if math.Abs(got-2) > 1e-5 {
		t.Errorf("∫spline(sin) = %.9g, want 2", got)
	}
}
