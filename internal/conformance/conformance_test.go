package conformance

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestRunShort is the conformance gate itself: the short harness must pass
// every check on a healthy tree.
func TestRunShort(t *testing.T) {
	rep, err := Run(context.Background(), Config{Short: true, Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Checks) < 50 {
		t.Fatalf("only %d checks ran; the fixture set should produce far more", len(rep.Checks))
	}
	if !rep.OK() {
		var b strings.Builder
		rep.Summarize(&b, false)
		t.Fatalf("harness failed:\n%s", b.String())
	}
	if rep.Passed != len(rep.Checks) || rep.Failed != 0 {
		t.Fatalf("tally mismatch: %d checks, passed %d, failed %d", len(rep.Checks), rep.Passed, rep.Failed)
	}
}

// TestWorkerIndependence asserts the determinism contract end to end: the
// report — every got, want, and margin — is identical at any worker count.
func TestWorkerIndependence(t *testing.T) {
	r1, err := Run(context.Background(), Config{Short: true, Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	r4, err := Run(context.Background(), Config{Short: true, Workers: 4})
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if r1.Workers == r4.Workers {
		t.Fatal("test misconfigured: both runs report the same worker count")
	}
	r1.Workers, r4.Workers = 0, 0
	if !reflect.DeepEqual(r1, r4) {
		for i := range r1.Checks {
			if i < len(r4.Checks) && !reflect.DeepEqual(r1.Checks[i], r4.Checks[i]) {
				t.Errorf("check %d differs:\n  w1: %+v\n  w4: %+v", i, r1.Checks[i], r4.Checks[i])
			}
		}
		t.Fatal("reports differ across worker counts")
	}
}

// TestMutationSelfCheck proves the harness has teeth: a 1 % perturbation of
// any estimator moment must trip at least one check.
func TestMutationSelfCheck(t *testing.T) {
	results, err := MutationSelfCheck(context.Background(), Config{Short: true, Workers: 1})
	if err != nil {
		t.Fatalf("MutationSelfCheck: %v", err)
	}
	if want := 2*len(mutationTargets) + 1; len(results) != want {
		t.Fatalf("got %d self-check results, want %d (moment matrix plus the tail-is entry)", len(results), want)
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("a %g× %s/%s perturbation slipped through every check", r.Factor, r.Target, r.Moment)
		}
	}
	if !AllCaught(results) {
		t.Error("AllCaught disagrees with the per-result loop")
	}
	if AllCaught(nil) {
		t.Error("AllCaught must be false for an empty result set")
	}
}

// TestMutationIsScoped checks the mutation hook perturbs only its target:
// an unrelated target leaves the linear checks untouched.
func TestMutationIsScoped(t *testing.T) {
	cfg := Config{Short: true, Workers: 1, lite: true,
		Mutation: &Mutation{Target: "naive", Moment: "std", Factor: SelfCheckFactor}}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range rep.Checks {
		if strings.HasPrefix(c.Name, "naive/std") {
			if c.Pass {
				t.Errorf("%s/%s should have failed under the naive/std mutation", c.Fixture, c.Name)
			}
			continue
		}
		if !c.Pass {
			t.Errorf("%s/%s failed but only naive/std was mutated", c.Fixture, c.Name)
		}
	}
}

// TestFixtures sanity-checks the fixture set: valid processes, positive
// sizes, and the degenerate corners the issue demands are all present.
func TestFixtures(t *testing.T) {
	fixtures, err := Fixtures(true)
	if err != nil {
		t.Fatalf("Fixtures: %v", err)
	}
	want := map[string]bool{
		"baseline": false, "tight-corr": false, "one-gate": false,
		"single-cell": false, "all-d2d": false, "all-wid": false,
		"wide-corr": false, "skinny": false,
	}
	for _, fx := range fixtures {
		if _, ok := want[fx.Name]; !ok {
			t.Errorf("unexpected fixture %q", fx.Name)
		}
		want[fx.Name] = true
		if err := fx.Proc.Validate(); err != nil {
			t.Errorf("%s: invalid process: %v", fx.Name, err)
		}
		if fx.N() < 1 {
			t.Errorf("%s: empty grid", fx.Name)
		}
		if fx.PolarOK && fx.PolarRefused {
			t.Errorf("%s: polar cannot both succeed and refuse", fx.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("fixture %q missing", name)
		}
	}
	for name := range liteNames {
		if !want[name] {
			t.Errorf("lite fixture %q not in the fixture set", name)
		}
	}
}

// TestGoldenFrozen checks the embedded golden file parses, matches the
// generator's seed, and covers the E1–E6 shapes.
func TestGoldenFrozen(t *testing.T) {
	entries, err := FrozenGolden()
	if err != nil {
		t.Fatalf("FrozenGolden: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Name] = true
		if e.Tol.Allowed(e.Value) <= 0 && e.Value != 0 {
			t.Errorf("%s: frozen with a zero tolerance", e.Name)
		}
	}
	for _, name := range []string{
		"e1.mean_err_max", "e1.std_err_max", "e2.identity_dev", "e2.mc_mismatch",
		"e3.pstar", "e4.envelope_256", "e5.std_err_c432", "e6.simpl_err_256",
	} {
		if !seen[name] {
			t.Errorf("golden entry %q missing — run `go generate ./internal/conformance`", name)
		}
	}
}

// TestMargin pins the margin convention: exact match passes even with zero
// allowance; any deviation against zero allowance is infinite.
func TestMargin(t *testing.T) {
	if m := margin(1, 1, 0); m != 0 {
		t.Errorf("exact match with zero allowance: margin %g, want 0", m)
	}
	if m := margin(1, 2, 0); !math.IsInf(m, 1) {
		t.Errorf("deviation with zero allowance: margin %g, want +Inf", m)
	}
	if m := margin(1.5, 1, 1); m != 0.5 {
		t.Errorf("margin %g, want 0.5", m)
	}
}
