package conformance

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/iscas"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

//go:generate go run ./gengolden

// GoldenEntry freezes one experiment-shape scalar with its declared
// tolerance. Tol bounds the frozen-vs-recomputed drift (ULP-class: the
// computation is deterministic, the slack only absorbs cross-platform
// floating-point differences); Bound, when positive, is the recorded
// envelope the value itself must stay under — so a regeneration that
// "fixes" a regression by freezing a worse number still fails the gate.
type GoldenEntry struct {
	Name  string    `json:"name"`
	Value float64   `json:"value"`
	Tol   Tolerance `json:"tol"`
	Bound float64   `json:"bound,omitempty"`
	Note  string    `json:"note,omitempty"`
}

// goldenFile is the testdata/golden.json schema.
type goldenFile struct {
	Seed    int64         `json:"seed"`
	Entries []GoldenEntry `json:"entries"`
}

//go:embed testdata/golden.json
var goldenJSON []byte

// FrozenGolden returns the entries frozen in testdata/golden.json
// (regenerate with `go generate ./internal/conformance`).
func FrozenGolden() ([]GoldenEntry, error) {
	var f goldenFile
	if err := json.Unmarshal(goldenJSON, &f); err != nil {
		return nil, fmt.Errorf("conformance: parsing embedded golden.json: %w", err)
	}
	if f.Seed != DefaultSeed {
		return nil, fmt.Errorf("conformance: golden.json frozen at seed %d, harness runs seed %d — regenerate", f.Seed, DefaultSeed)
	}
	return f.Entries, nil
}

// goldenTol bounds frozen-vs-recomputed drift. The pipeline is fully
// deterministic at fixed seed, so this only needs to absorb cross-platform
// floating-point and math-library differences.
var goldenTol = Tolerance{Rel: 1e-6}

// ComputeGolden recomputes every golden value from scratch: the E1–E6
// experiment shapes of EXPERIMENTS.md at the shared-core scale, seed
// DefaultSeed. The same code path serves the harness (compare against the
// frozen file) and the gengolden generator (rewrite the frozen file).
func ComputeGolden(ctx context.Context, workers int) ([]GoldenEntry, error) {
	lib, err := charlib.SharedCore()
	if err != nil {
		return nil, err
	}
	var out []GoldenEntry
	add := func(name string, value float64, boundName, note string) {
		bound, _ := RecordedEnvelope(boundName, 0)
		out = append(out, GoldenEntry{Name: name, Value: value, Tol: goldenTol, Bound: bound, Note: note})
	}

	// E1: analytical-fit vs Monte-Carlo cell moments, worst over all
	// (cell, state) pairs in the shared-core library.
	meanMax, stdMax := lib.FitAccuracy()
	add("e1.mean_err_max", meanMax, "e1.mean_err_max", "worst |fit vs MC| cell mean error, % (§2.1.2)")
	add("e1.std_err_max", stdMax, "e1.std_err_max", "worst |fit vs MC| cell σ error, % (§2.1.2)")

	// E2: the f_{m,n} leakage-correlation mapping on the Fig. 2 pair.
	idDev, mcMismatch, err := goldenFig2(lib)
	if err != nil {
		return nil, err
	}
	add("e2.identity_dev", idDev, "e2.identity_dev", "max |f(ρ)−ρ|, NAND2/0 × NOR2/0 (Fig. 2)")
	add("e2.mc_mismatch", mcMismatch, "e2.mc_mismatch", "max |analytic−MC| leakage correlation (Fig. 2)")

	// E3: the conservative signal probability for the baseline mix.
	hist, err := baselineHist()
	if err != nil {
		return nil, err
	}
	pstar, err := charlib.MaximizingSignalProb(lib, hist, false)
	if err != nil {
		return nil, err
	}
	out = append(out, GoldenEntry{Name: "e3.pstar", Value: pstar, Tol: goldenTol,
		Note: "leakage-maximizing signal probability, baseline mix (Fig. 3)"})

	// E4: random-circuit deviation envelope from the RG estimate at n = 256.
	env, err := goldenFig6(ctx, lib, hist, workers)
	if err != nil {
		return nil, err
	}
	e4Bound, _ := RecordedEnvelope("e4.envelope", 256)
	out = append(out, GoldenEntry{Name: "e4.envelope_256", Value: env, Tol: goldenTol,
		Bound: e4Bound, Note: "max |truth−RG| envelope, 3 circuits, n=256, % (Fig. 6)"})

	// E5: ISCAS c432 σ error of the RG estimate against the O(n²) truth.
	e5, err := goldenTable1(ctx, lib, workers)
	if err != nil {
		return nil, err
	}
	add("e5.std_err_c432", e5, "e5.std_err_worst", "RG vs truth σ error on synthetic c432, % (Table 1)")

	// E6: the ρ_leak = ρ_L simplification error at n = 256.
	e6, err := goldenSimplified(ctx, lib, hist)
	if err != nil {
		return nil, err
	}
	add("e6.simpl_err_256", e6, "e6.simpl_err_worst", "worst simplified-corr σ error, WID-only and WID+D2D, % (§3.1.2)")

	// QMC referee freeze: the dense and FFT sampler moments on the qmc
	// conformance fixture, so the quasi-Monte-Carlo wiring cannot perturb
	// either pseudo-random path without tripping the golden gate.
	qe, err := qmcGoldenEntries(ctx, lib, workers)
	if err != nil {
		return nil, err
	}
	out = append(out, qe...)
	return out, nil
}

// WriteGoldenFile renders the golden file as indented JSON.
func WriteGoldenFile(entries []GoldenEntry) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(goldenFile{Seed: DefaultSeed, Entries: entries}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// baselineHist is the fixture cell mix, reused by the golden shapes.
func baselineHist() (*stats.Histogram, error) {
	return stats.NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 2, "NOR2_X1": 2, "XOR2_X1": 1,
	})
}

// chipCorner is the EXPERIMENTS.md chip-scale process corner.
func chipCorner() *spatial.Process {
	return corner(spatial.TruncatedExpCorr{Lambda: 30, R: 120})
}

func goldenFig2(lib *charlib.Library) (idDev, mcMismatch float64, err error) {
	ca, err := lib.Cell("NAND2_X1")
	if err != nil {
		return 0, 0, err
	}
	cb, err := lib.Cell("NOR2_X1")
	if err != nil {
		return 0, 0, err
	}
	sa, sb := &ca.States[0], &cb.States[0]
	mu, sigma := lib.Process.LNominal, lib.Process.TotalSigma()
	rng := stats.NewRNG(DefaultSeed, "conformance/e2")
	for _, rho := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1} {
		an, err := charlib.LeakageCorr(sa, sb, rho, mu, sigma)
		if err != nil {
			return 0, 0, err
		}
		mc := charlib.MCPairCorr(sa, sb, rho, mu, sigma, 8000, rng)
		idDev = math.Max(idDev, math.Abs(an-rho))
		mcMismatch = math.Max(mcMismatch, math.Abs(an-mc))
	}
	return idDev, mcMismatch, nil
}

func goldenFig6(ctx context.Context, lib *charlib.Library, hist *stats.Histogram, workers int) (float64, error) {
	const side, reps = 16, 3
	n := side * side
	w := float64(side) * placement.DefaultSitePitch
	spec := core.DesignSpec{Hist: hist, N: n, W: w, H: w, SignalProb: 0.5}
	m, err := core.NewModelCtx(ctx, lib, chipCorner(), spec, core.Analytic)
	if err != nil {
		return 0, err
	}
	m.Workers = workers
	est, err := m.EstimateLinearCtx(ctx)
	if err != nil {
		return 0, err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return 0, err
	}
	arity := libArity(lib)
	envelope := 0.0
	for rep := 0; rep < reps; rep++ {
		rng := stats.NewRNG(DefaultSeed, fmt.Sprintf("conformance/e4/%d", rep))
		nl, err := netlist.RandomCircuit(rng, fmt.Sprintf("golden-e4-%d", rep), n, 16, hist, arity)
		if err != nil {
			return 0, err
		}
		pl, err := placement.Random(rng, grid, n)
		if err != nil {
			return 0, err
		}
		truth, err := core.TrueStatsCtx(ctx, m, nl, pl)
		if err != nil {
			return 0, err
		}
		envelope = math.Max(envelope, math.Abs(stats.RelErr(truth.Mean, est.Mean)))
		envelope = math.Max(envelope, math.Abs(stats.RelErr(truth.Std, est.Std)))
	}
	return envelope, nil
}

func goldenTable1(ctx context.Context, lib *charlib.Library, workers int) (float64, error) {
	ckt, err := iscas.Build("c432", DefaultSeed, libArity(lib))
	if err != nil {
		return 0, err
	}
	spec, err := core.ExtractSpec(ckt.Netlist, ckt.Placement, 0.5)
	if err != nil {
		return 0, err
	}
	m, err := core.NewModelCtx(ctx, lib, chipCorner(), spec, core.Analytic)
	if err != nil {
		return 0, err
	}
	m.Workers = workers
	truth, err := core.TrueStatsCtx(ctx, m, ckt.Netlist, ckt.Placement)
	if err != nil {
		return 0, err
	}
	est, err := m.EstimateLinearCtx(ctx)
	if err != nil {
		return 0, err
	}
	return math.Abs(stats.RelErr(est.Std, truth.Std)), nil
}

func goldenSimplified(ctx context.Context, lib *charlib.Library, hist *stats.Histogram) (float64, error) {
	const side = 16
	n := side * side
	w := float64(side) * placement.DefaultSitePitch
	spec := core.DesignSpec{Hist: hist, N: n, W: w, H: w, SignalProb: 0.5}
	worst := 0.0
	base := chipCorner()
	for _, wid := range []bool{true, false} {
		proc := base
		if wid {
			proc = base.AllWID()
		}
		exact, err := core.NewModelCtx(ctx, lib, proc, spec, core.Analytic)
		if err != nil {
			return 0, err
		}
		simplified, err := core.NewModelCtx(ctx, lib, proc, spec, core.AnalyticSimplified)
		if err != nil {
			return 0, err
		}
		e, err := exact.EstimateLinearCtx(ctx)
		if err != nil {
			return 0, err
		}
		s, err := simplified.EstimateLinearCtx(ctx)
		if err != nil {
			return 0, err
		}
		worst = math.Max(worst, math.Abs(stats.RelErr(s.Std, e.Std)))
	}
	return worst, nil
}

// libArity adapts a characterized library to netlist.CellArity.
func libArity(lib *charlib.Library) netlist.CellArity {
	return func(typ string) (int, error) {
		cc, err := lib.Cell(typ)
		if err != nil {
			return 0, err
		}
		return cc.NumInputs, nil
	}
}
