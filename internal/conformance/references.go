package conformance

import (
	"math"

	"leakest/internal/core"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/quad"
)

// This file holds the independent reference implementations the harness
// compares the production estimators against. Each one recomputes the same
// quantity from the public model API with a deliberately different
// algorithm — a brute-force pair sum instead of the distance regrouping, a
// serial loop instead of the sharded pool, doubled quadrature resolution —
// so a bug in a production shortcut cannot cancel out of both sides.

// bruteStd evaluates Eq. 15 directly on the full rows×cols site grid: the
// O(S²) pairwise sum the linear method's distance regrouping (Eq. 17)
// claims to equal exactly. Full-occupancy fixtures keep S = N, so no
// occupancy scaling enters on either side.
func bruteStd(m *core.Model, rows, cols int) float64 {
	dw := m.Spec.W / float64(cols)
	dh := m.Spec.H / float64(rows)
	s := rows * cols
	off := 0.0
	for a := 0; a < s; a++ {
		ra, ca := a/cols, a%cols
		for b := a + 1; b < s; b++ {
			rb, cb := b/cols, b%cols
			d := math.Hypot(float64(ca-cb)*dw, float64(ra-rb)*dh)
			off += 2 * m.CovAtDist(d)
		}
	}
	return math.Sqrt(float64(s)*m.RGVariance() + off)
}

// integral2DRefStd evaluates the Eq. 20 integral with the panel density
// doubled relative to the production estimator. Agreement to ~0.1 % shows
// the production quadrature resolved the integrand; any error in the
// integrand itself appears identically on both sides and is caught by the
// separate integral-vs-linear envelope check.
func integral2DRefStd(m *core.Model) float64 {
	w, h := m.Spec.W, m.Spec.H
	n := float64(m.Spec.N)
	area := w * h
	integrand := func(x, y float64) float64 {
		return (w - x) * (h - y) * m.CovAtCorr(m.Proc.TotalCorr(math.Hypot(x, y)))
	}
	lam := m.Proc.EffectiveRange(0.1)
	if lam <= 0 {
		lam = math.Max(w, h)
	}
	panels := func(extent float64) int {
		p := int(math.Ceil(8 * extent / lam))
		if p < 12 {
			p = 12
		}
		if p > 96 {
			p = 96
		}
		return p
	}
	integral := quad.Integrate2D(integrand, 0, w, 0, h, panels(w), panels(h))
	variance := 4 * n * n / (area * area) * integral
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// polarRefStd evaluates the Eqs. 25–26 polar integral with doubled panel
// density. Callers only invoke it on fixtures where the production polar
// estimator succeeded, so the Dmax ≤ min(W, H) precondition holds.
func polarRefStd(m *core.Model) float64 {
	w, h := m.Spec.W, m.Spec.H
	n := float64(m.Spec.N)
	area := w * h
	dmax := 0.0
	if m.Proc.SigmaWID > 0 && m.Proc.WIDCorr != nil {
		dmax = m.Proc.WIDCorr.Range()
		if math.IsInf(dmax, 1) {
			dmax = m.Proc.EffectiveRange(1e-4)
		}
	}
	floor := m.CovAtCorr(m.Proc.CorrFloor())
	integrand := func(r float64) float64 {
		c := m.CovAtCorr(m.Proc.TotalCorr(r)) - floor
		return c * r * (0.5*r*r - (w+h)*r + math.Pi/2*w*h)
	}
	lam := m.Proc.EffectiveRange(0.5)
	panels := 32
	if lam > 0 {
		if p := int(math.Ceil(16 * dmax / lam)); p > panels {
			panels = p
		}
	}
	if panels > 512 {
		panels = 512
	}
	integral := quad.GaussLegendrePanels(integrand, 0, dmax, panels)
	variance := 4*n*n/(area*area)*integral + n*n*floor
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// serialTruthRef recomputes TrueStats with a plain serial double loop over
// the public pairwise API — no sharding, no ticker, no spline-cache
// plumbing. It accumulates per row in index order, the same order the
// sharded production loop merges its rows, so the comparison is exact.
func serialTruthRef(m *core.Model, nl *netlist.Netlist, pl *placement.Placement) (mean, std float64, err error) {
	n := len(nl.Gates)
	variance := 0.0
	xs := make([]float64, n)
	ys := make([]float64, n)
	for g, gate := range nl.Gates {
		mu, sigma, cerr := m.CellStats(gate.Type)
		if cerr != nil {
			return 0, 0, cerr
		}
		mean += mu
		variance += sigma * sigma
		xs[g], ys[g] = pl.Pos(g)
	}
	for a := 0; a < n; a++ {
		row := 0.0
		for b := a + 1; b < n; b++ {
			d := math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
			rho := m.Proc.TotalCorr(d)
			if rho <= 0 {
				continue
			}
			cov, perr := m.PairCovAtCorr(nl.Gates[a].Type, nl.Gates[b].Type, rho)
			if perr != nil {
				return 0, 0, perr
			}
			if cov > 0 {
				row += 2 * cov
			}
		}
		variance += row
	}
	return mean, math.Sqrt(variance), nil
}
