package conformance

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestRunQMC is the qmc conformance gate itself: on a healthy tree every
// check — frozen referees, unbiasedness, the equal-SE trial ratio, the
// convergence-slope gates, and scramble variation — must pass.
func TestRunQMC(t *testing.T) {
	rep, err := RunQMC(context.Background(), Config{Short: true, Workers: 2})
	if err != nil {
		t.Fatalf("RunQMC: %v", err)
	}
	if len(rep.Checks) < 12 {
		t.Fatalf("only %d checks ran; the qmc suite should produce more", len(rep.Checks))
	}
	if !rep.OK() {
		var b strings.Builder
		rep.Summarize(&b, false)
		t.Fatalf("qmc suite failed:\n%s", b.String())
	}
	var b strings.Builder
	rep.Summarize(&b, true)
	t.Logf("qmc suite:\n%s", b.String())
}

// TestRunQMCWorkerIndependence asserts the determinism contract: the qmc
// report — every got, want, and margin — is identical at any worker count.
func TestRunQMCWorkerIndependence(t *testing.T) {
	r1, err := RunQMC(context.Background(), Config{Short: true, Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	r4, err := RunQMC(context.Background(), Config{Short: true, Workers: 4})
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	r1.Workers, r4.Workers = 0, 0
	if !reflect.DeepEqual(r1, r4) {
		for i := range r1.Checks {
			if i < len(r4.Checks) && !reflect.DeepEqual(r1.Checks[i], r4.Checks[i]) {
				t.Errorf("check %d differs:\n  w1: %+v\n  w4: %+v", i, r1.Checks[i], r4.Checks[i])
			}
		}
		t.Fatal("qmc reports differ across worker counts")
	}
}

// TestQMCSelfCheck proves the qmc gates have teeth: degrading the Sobol
// stream to an unscrambled or pseudo-random generator must trip at least
// one check per mode.
func TestQMCSelfCheck(t *testing.T) {
	results, err := QMCSelfCheck(context.Background(), Config{Short: true, Workers: 2})
	if err != nil {
		t.Fatalf("QMCSelfCheck: %v", err)
	}
	if len(results) != len(qmcDegradeModes) {
		t.Fatalf("got %d self-check results, want %d", len(results), len(qmcDegradeModes))
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("the %s degrade slipped through every qmc check", r.Moment)
		}
	}
	if !AllCaught(results) {
		t.Error("AllCaught disagrees with the per-result loop")
	}
}

// TestQMCGoldenFrozen checks the referee moments are frozen alongside the
// E1–E6 shapes.
func TestQMCGoldenFrozen(t *testing.T) {
	entries, err := FrozenGolden()
	if err != nil {
		t.Fatalf("FrozenGolden: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Name] = true
	}
	for _, name := range []string{
		"qmc.dense_ref_mean", "qmc.dense_ref_std", "qmc.fft_ref_mean", "qmc.fft_ref_std",
	} {
		if !seen[name] {
			t.Errorf("golden entry %q missing — run `go generate ./internal/conformance`", name)
		}
	}
}
