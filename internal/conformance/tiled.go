package conformance

import (
	"bytes"
	"context"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/core"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// The tiled conformance suite gates the DESIGN.md §16 tiled pipeline:
//
//  1. Exactness — on every fixture the tiled linear estimator must equal
//     the monolithic linear estimator bitwise (ULP-class Exact bounds) at
//     each tile count, stay bitwise invariant across tile counts and
//     worker counts, and keep its per-tile bookkeeping consistent.
//  2. Streaming — per-tile gate counts accumulated from a leakest-stream
//     serialization must reproduce the in-memory result bitwise, so the
//     O(tile)-memory reader is moment-preserving by construction.
//  3. Envelope — the tiled quadrature estimator (per-tile Eq. 20 plus
//     centroid cross terms) must track the monolithic integral within a
//     recorded envelope.
//  4. Sampled law — the tiled Monte Carlo must match an exact serial
//     pairwise reference of its own law (full TotalCorr within a tile, the
//     D2D CorrFloor across tiles) within z·SE, and be bitwise worker-
//     invariant.
//
// TiledSelfCheck proves the gates have teeth with three mutation targets:
// "tiled" scales every tiled analytic result, "tile-count" scales only the
// middle tile count of the invariance sweep, and "tiled-mc" scales the
// tiled Monte-Carlo moments.

// tiledTileCounts is the tile-count sweep of the exactness gates. The
// values are mutually coprime with the fixture grids' typical dimensions,
// so uneven largest-remainder partitions are exercised, not just even
// splits.
var tiledTileCounts = []int{2, 3, 5}

// tiledMutationMid is the tile count the "tile-count" mutation target
// perturbs — the middle of the sweep, so both the invariance chain and the
// monolithic comparison see the defect.
const tiledMutationMid = 3

// RunTiled executes the tiled conformance suite. Check failures land in
// the report; only infrastructure errors return non-nil.
func RunTiled(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	lib, err := charlib.SharedCore()
	if err != nil {
		return nil, err
	}
	rep := &Report{Short: cfg.Short, Seed: cfg.Seed, Workers: cfg.Workers}
	h := &harness{cfg: cfg, lib: lib, rep: rep}
	if !cfg.tiledMCOnly {
		fixtures, err := Fixtures(cfg.Short)
		if err != nil {
			return nil, err
		}
		for _, fx := range fixtures {
			if cfg.lite && !liteNames[fx.Name] {
				continue
			}
			if err := h.runTiledFixture(ctx, fx); err != nil {
				return nil, fmt.Errorf("conformance: tiled fixture %s: %w", fx.Name, err)
			}
		}
	}
	if !cfg.lite {
		if err := h.runTiledMC(ctx); err != nil {
			return nil, fmt.Errorf("conformance: tiled-mc: %w", err)
		}
	}
	rep.tally()
	return rep, nil
}

// runTiledFixture runs the analytic tiled gates on one fixture.
func (h *harness) runTiledFixture(ctx context.Context, fx Fixture) error {
	n := fx.N()
	spec := core.DesignSpec{
		Hist: fx.Hist, N: n,
		W:          float64(fx.Cols) * placement.DefaultSitePitch,
		H:          float64(fx.Rows) * placement.DefaultSitePitch,
		SignalProb: fx.SignalProb,
	}
	m, err := core.NewModelCtx(ctx, h.lib, fx.Proc, spec, core.Analytic)
	if err != nil {
		return err
	}
	m.Workers = h.cfg.Workers
	lin, err := m.EstimateLinearCtx(ctx)
	if err != nil {
		return err
	}

	var prev core.Result
	for i, t := range tiledTileCounts {
		res, err := m.EstimateTiledCtx(ctx, t, nil)
		if err != nil {
			return err
		}
		res = h.mutate("tiled", res)
		if t == tiledMutationMid {
			res = h.mutate("tile-count", res)
		}
		name := fmt.Sprintf("tiled/t%d", t)
		h.check(fx.Name, name+"-mean-vs-monolithic", KindExact, res.Mean, lin.Mean, Exact(),
			"tiled mean is the same n·µ_XI sum")
		h.check(fx.Name, name+"-std-vs-monolithic", KindExact, res.Std, lin.Std, Exact(),
			"ordered-pair lag regrouping over tile intervals is integer-exact (§16)")
		gates := 0
		for _, ts := range res.TileStats {
			gates += ts.Gates
		}
		h.checkBehavior(fx.Name, name+"-gate-partition", gates == n,
			fmt.Sprintf("per-tile gate counts sum to %d, spec has %d", gates, n))
		tileMean := 0.0
		for _, ts := range res.TileStats {
			tileMean += ts.Mean
		}
		h.check(fx.Name, name+"-tile-mean-additivity", KindExact, tileMean, lin.Mean, Exact(),
			"tile means are linear in the gate counts and must sum to the chip mean")
		if i > 0 {
			h.checkBehavior(fx.Name, fmt.Sprintf("tiled/t%d-invariant-vs-t%d", t, tiledTileCounts[i-1]),
				res.Mean == prev.Mean && res.Std == prev.Std,
				"tiled moments must be bitwise invariant in the tile count")
		}
		prev = res
	}

	// Worker invariance: the serial tiled run must reproduce the pooled one
	// bitwise (prev holds the last sweep result at cfg.Workers).
	m.Workers = 1
	serial, err := m.EstimateTiledCtx(ctx, tiledTileCounts[len(tiledTileCounts)-1], nil)
	if err != nil {
		return err
	}
	m.Workers = h.cfg.Workers
	serial = h.mutate("tiled", serial)
	h.checkBehavior(fx.Name, "tiled/worker-invariance",
		serial.Mean == prev.Mean && serial.Std == prev.Std,
		"tiled moments must be bitwise identical at any worker count")

	// Tiled quadrature: exact mean, σ within the recorded integral envelope
	// plus the centroid-cross-term allowance measured in the core tests.
	ti, err := m.EstimateTiledIntegral2DCtx(ctx, tiledMutationMid, nil)
	if err != nil {
		return err
	}
	ti = h.mutate("tiled", ti)
	h.check(fx.Name, "tiled/integral-mean-identity", KindExact, ti.Mean, lin.Mean, Exact(), "")
	intBound := fx.IntErrBoundPct
	if intBound == 0 {
		intBound, _ = RecordedEnvelope("e7.integral_err", n)
	}
	h.check(fx.Name, "tiled/integral-std-vs-linear", KindApprox, ti.Std, lin.Std,
		RelPct(intBound+5),
		"per-tile Eq. 20 plus centroid cross terms; integral envelope + 5 pp centroid allowance")
	return nil
}

// tiledMCFixture builds the placed design the sampled-law gates run on: a
// mixed-cell random circuit on a 15×15 grid under a short-range kernel
// (λ = 3 µm, hard range 12 µm — shorter than the 3-tile tile side), so the
// cross-tile covariance the tiled law floors at CorrFloor is a real but
// small term. Always built at DefaultSeed so the geometry is stable at any
// harness seed; cfg.Seed varies only the trial streams.
func tiledMCFixture(lib *charlib.Library) (*core.Model, *netlist.Netlist, *placement.Placement, error) {
	base := spatial.Default90nm()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 3, R: 12},
	}
	hist, err := stats.NewHistogram(map[string]float64{"INV_X1": 2, "NAND2_X1": 2, "NOR2_X1": 1})
	if err != nil {
		return nil, nil, nil, err
	}
	const n = 225
	rng := stats.NewRNG(DefaultSeed, "conformance/tiled-mc")
	nl, err := netlist.RandomCircuit(rng, "conf-tiled", n, 8, hist, libArity(lib))
	if err != nil {
		return nil, nil, nil, err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		return nil, nil, nil, err
	}
	spec, err := core.ExtractSpec(nl, pl, 0.5)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := core.NewModel(lib, proc, spec, core.Analytic)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, nl, pl, nil
}

// serialTiledTruthRef computes the exact first two moments of the tiled
// Monte-Carlo law by a plain serial pair sum: within a tile the pair
// correlation is the process TotalCorr at the gate distance; across tiles
// it is the D2D floor, because the tiled sampler draws independent WID
// fields per tile on top of one shared D2D deviate.
func serialTiledTruthRef(m *core.Model, nl *netlist.Netlist, pl *placement.Placement, tiles int) (mean, std float64, err error) {
	parts := placement.Partition(pl.Grid, tiles)
	tileOf := make([]int, len(nl.Gates))
	for g, s := range pl.Site {
		row, col := s/pl.Grid.Cols, s%pl.Grid.Cols
		for ti, t := range parts {
			if t.Contains(row, col) {
				tileOf[g] = ti
				break
			}
		}
	}
	floor := m.Proc.CorrFloor()
	n := len(nl.Gates)
	variance := 0.0
	xs := make([]float64, n)
	ys := make([]float64, n)
	for g, gate := range nl.Gates {
		mu, sigma, cerr := m.CellStats(gate.Type)
		if cerr != nil {
			return 0, 0, cerr
		}
		mean += mu
		variance += sigma * sigma
		xs[g], ys[g] = pl.Pos(g)
	}
	for a := 0; a < n; a++ {
		row := 0.0
		for b := a + 1; b < n; b++ {
			var rho float64
			if tileOf[a] == tileOf[b] {
				rho = m.Proc.TotalCorr(math.Hypot(xs[a]-xs[b], ys[a]-ys[b]))
			} else {
				rho = floor
			}
			if rho <= 0 {
				continue
			}
			cov, perr := m.PairCovAtCorr(nl.Gates[a].Type, nl.Gates[b].Type, rho)
			if perr != nil {
				return 0, 0, perr
			}
			if cov > 0 {
				row += 2 * cov
			}
		}
		variance += row
	}
	return mean, math.Sqrt(variance), nil
}

// runTiledMC runs the sampled-law and streaming gates.
func (h *harness) runTiledMC(ctx context.Context) error {
	const fx = "tiled-mc"
	m, nl, pl, err := tiledMCFixture(h.lib)
	if err != nil {
		return err
	}
	m.Workers = h.cfg.Workers
	const tiles = 3
	trials := 1500
	if h.cfg.Short {
		trials = 500
	}
	run := func(workers int) (chipmc.Result, error) {
		return chipmc.RunContext(ctx, chipmc.Config{
			Lib: h.lib, Proc: m.Proc, SignalProb: 0.5, Samples: trials,
			Seed: h.cfg.Seed, Workers: workers, Tiles: tiles, MaxGates: len(nl.Gates),
		}, nl, pl)
	}
	mc, err := run(h.cfg.Workers)
	if err != nil {
		return err
	}
	mc.Mean = h.mutateMC("tiled-mc", "mean", mc.Mean)
	mc.Std = h.mutateMC("tiled-mc", "std", mc.Std)

	refMean, refStd, err := serialTiledTruthRef(m, nl, pl, tiles)
	if err != nil {
		return err
	}
	h.check(fx, "tiled-mc/mean-vs-law", KindStatistical, mc.Mean, refMean,
		MeanSETol(refStd, trials, mcZ),
		fmt.Sprintf("tiled sampler vs the exact moments of its own law, %d trials", trials))
	h.check(fx, "tiled-mc/std-vs-law", KindStatistical, mc.Std, refStd,
		StdSETol(refStd, trials, 1.5*mcZ),
		"normal-theory σ SE widened 1.5× for the lognormal totals")

	serial, err := run(1)
	if err != nil {
		return err
	}
	h.checkBehavior(fx, "tiled-mc/worker-invariance",
		serial.Mean == mc.Mean && serial.Std == mc.Std,
		"per-(tile, trial) streams make the run bitwise worker-invariant")

	// Streaming gate: serialize the fixture in leakest-stream format, scan
	// it back accumulating only histogram + per-tile counts, and require the
	// re-estimated tiled moments to equal the in-memory ones bitwise.
	var buf bytes.Buffer
	if err := netlist.WritePlaced(&buf, nl, pl, tiles); err != nil {
		return err
	}
	typeCounts := map[string]float64{}
	tileGates := make([]int, len(placement.Partition(pl.Grid, tiles)))
	hdr, err := netlist.ScanPlaced(bytes.NewReader(buf.Bytes()), netlist.StreamVisitor{
		Gate: func(ti int, typ []byte, _, _ int) error {
			typeCounts[string(typ)]++
			tileGates[ti]++
			return nil
		},
	})
	if err != nil {
		return err
	}
	hist, err := stats.NewHistogram(typeCounts)
	if err != nil {
		return err
	}
	sm, err := core.NewModel(h.lib, m.Proc, core.DesignSpec{
		Hist: hist, N: hdr.Gates,
		W:          float64(hdr.Cols) * hdr.SiteW,
		H:          float64(hdr.Rows) * hdr.SiteH,
		SignalProb: 0.5,
	}, core.Analytic)
	if err != nil {
		return err
	}
	sm.Workers = h.cfg.Workers
	streamed, err := sm.EstimateTiledCtx(ctx, hdr.Tiles, tileGates)
	if err != nil {
		return err
	}
	streamed = h.mutate("tiled", streamed)
	mono, err := m.EstimateLinearCtx(ctx)
	if err != nil {
		return err
	}
	h.check(fx, "tiled-mc/stream-mean-vs-in-memory", KindExact, streamed.Mean, mono.Mean, Exact(),
		"one streaming pass (histogram + per-tile counts) reproduces the in-memory linear mean")
	h.check(fx, "tiled-mc/stream-std-vs-in-memory", KindExact, streamed.Std, mono.Std, Exact(),
		"global moments depend only on (histogram, N, W, H); the stream carries them losslessly")
	return nil
}

// mutateMC is the scalar mutation hook for the Monte-Carlo moments (they
// live in chipmc.Result, which h.mutate's core.Result signature can't
// carry).
func (h *harness) mutateMC(target, moment string, v float64) float64 {
	mu := h.cfg.Mutation
	if mu == nil || mu.Target != target || mu.Moment != moment {
		return v
	}
	return v * mu.Factor
}

// tiledMutationTargets are the self-check targets of the tiled suite.
var tiledMutationTargets = []string{"tiled", "tile-count", "tiled-mc"}

// TiledSelfCheck proves the tiled suite has teeth: each 1 % perturbation
// must make at least one gate fail. The analytic targets run the lite
// fixture subset; "tiled-mc" runs only the sampled-law stage.
func TiledSelfCheck(ctx context.Context, cfg Config) ([]SelfCheckResult, error) {
	cfg = cfg.withDefaults()
	var out []SelfCheckResult
	for _, target := range tiledMutationTargets {
		for _, moment := range []string{"mean", "std"} {
			mcfg := cfg
			mcfg.Mutation = &Mutation{Target: target, Moment: moment, Factor: SelfCheckFactor}
			mcfg.lite = target != "tiled-mc"
			mcfg.tiledMCOnly = target == "tiled-mc"
			rep, err := RunTiled(ctx, mcfg)
			if err != nil {
				return out, fmt.Errorf("conformance: tiled self-check %s/%s: %w", target, moment, err)
			}
			out = append(out, SelfCheckResult{
				Target: target, Moment: moment, Factor: SelfCheckFactor,
				Failed: rep.Failed, Caught: rep.Failed > 0,
			})
		}
	}
	return out, nil
}
