package conformance

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestRunTiled is the tiled conformance gate itself: on a healthy tree
// every check — bitwise tiled-vs-monolithic exactness, tile-count and
// worker invariance, the quadrature envelope, the sampled tiled law, and
// the streaming round trip — must pass.
func TestRunTiled(t *testing.T) {
	rep, err := RunTiled(context.Background(), Config{Short: true, Workers: 2})
	if err != nil {
		t.Fatalf("RunTiled: %v", err)
	}
	if len(rep.Checks) < 20 {
		t.Fatalf("only %d checks ran; the tiled suite should produce more", len(rep.Checks))
	}
	if !rep.OK() {
		var b strings.Builder
		rep.Summarize(&b, false)
		t.Fatalf("tiled suite failed:\n%s", b.String())
	}
	var b strings.Builder
	rep.Summarize(&b, true)
	t.Logf("tiled suite:\n%s", b.String())
}

// TestRunTiledWorkerIndependence asserts the determinism contract: the
// tiled report — every got, want, and margin — is identical at any worker
// count.
func TestRunTiledWorkerIndependence(t *testing.T) {
	r1, err := RunTiled(context.Background(), Config{Short: true, Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	r4, err := RunTiled(context.Background(), Config{Short: true, Workers: 4})
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	r1.Workers, r4.Workers = 0, 0
	if !reflect.DeepEqual(r1, r4) {
		for i := range r1.Checks {
			if i < len(r4.Checks) && !reflect.DeepEqual(r1.Checks[i], r4.Checks[i]) {
				t.Errorf("check %d differs:\n  w1: %+v\n  w4: %+v", i, r1.Checks[i], r4.Checks[i])
			}
		}
		t.Fatal("tiled reports differ across worker counts")
	}
}

// TestTiledSelfCheck proves the tiled gates have teeth: a 1 % perturbation
// of any target moment must trip at least one check.
func TestTiledSelfCheck(t *testing.T) {
	results, err := TiledSelfCheck(context.Background(), Config{Short: true, Workers: 2})
	if err != nil {
		t.Fatalf("TiledSelfCheck: %v", err)
	}
	if len(results) != 2*len(tiledMutationTargets) {
		t.Fatalf("got %d self-check results, want %d", len(results), 2*len(tiledMutationTargets))
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("mutation %s/%s slipped through every tiled check", r.Target, r.Moment)
		}
	}
	if !AllCaught(results) {
		t.Error("AllCaught disagrees with the per-result loop")
	}
}

// TestTiledMutationIsScoped: tiled mutation targets must not leak into the
// base suite, and base targets must not trip the tiled suite.
func TestTiledMutationIsScoped(t *testing.T) {
	cfg := Config{Short: true, Workers: 2,
		Mutation: &Mutation{Target: "linear", Moment: "std", Factor: SelfCheckFactor}}
	cfg.lite = true
	rep, err := RunTiled(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunTiled: %v", err)
	}
	if !rep.OK() {
		var b strings.Builder
		rep.Summarize(&b, false)
		t.Fatalf("a 'linear' mutation tripped the tiled suite (it mutates inputs the tiled gates re-derive):\n%s", b.String())
	}
}
