package conformance

import (
	"context"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/core"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// This file gates the distribution-tail estimators (chipmc.TailConfig):
//
//   - tail-analytic: a single INV_X1 with the whole variation budget in the
//     die-to-die term and its input pinned high. Chip leakage is then
//     exactly I = f(µ + σ·Z) for the one characterized state curve f and a
//     standard normal Z, so every tail quantity has a closed form:
//     quantiles are f(µ + σ·Φ⁻¹(·)) and a spec placed at f(µ + σ·Φ⁻¹(p))
//     has exceedance probability exactly p. Both the plain-MC exceedance
//     and the importance-sampled deep-tail estimate are held to these
//     closed forms within z·SE.
//
//   - tail-brute: a 6×6 D2D-heavy placed circuit where no closed form
//     exists. A large plain-MC referee (10⁶ trials full, trimmed in Short
//     mode) measures P[I > spec] at a spec placed near P ≈ 10⁻⁴ by the
//     truth-based lognormal fit; the importance sampler must reproduce it
//     within z·√(SE_IS² + SE_ref²) while spending at most 1/20 of the
//     referee's trials — and must do so at an equal-or-better standard
//     error, the whole point of the tilted estimator.
//
// The tail-is mutation (see TailSelfCheckFactor) rides through
// chipmc.TailConfig.WeightScale: a uniform 2× weight mis-scaling flows
// through the weighted estimator — probability, SE, ESS bookkeeping —
// exactly as a dropped factor in the likelihood ratio would, and must trip
// the z·SE gates above.

// Analytic single-gate fixture sizes. The design has one gate, so trials
// cost one normal draw and one spline evaluation; the counts are identical
// in Short and full modes.
const (
	// tailPlainTrials sizes the plain-MC run the quantile and shallow
	// exceedance checks read from.
	tailPlainTrials = 20000
	// tailPlainP is the shallow exceedance probability — large enough that
	// plain MC resolves it crisply (≈2000 expected hits).
	tailPlainP = 0.1
	// tailDeepPrimary is the primary trial count of the IS run (it feeds
	// the lognormal moment fit that auto-selects the tilt).
	tailDeepPrimary = 4000
	// tailDeepISTrials is the importance-sampled trial count.
	tailDeepISTrials = 6000
	// tailDeepP is the deep exceedance probability the IS gate checks at —
	// a tail plain MC could not resolve at these trial counts.
	tailDeepP = 1e-3
)

// tailWeightScale returns the deliberate IS weight mis-scaling when the
// configured mutation targets the tail estimator, 0 (meaning unscaled)
// otherwise. Unlike the moment mutations, which bias a finished result in
// the harness, this one rides through chipmc.TailConfig.WeightScale so the
// bias flows through the whole weighted estimator — probability, standard
// error, and ESS bookkeeping — exactly as a real weighting bug would.
func (h *harness) tailWeightScale() float64 {
	if mu := h.cfg.Mutation; mu != nil && mu.Target == "tail-is" {
		return mu.Factor
	}
	return 0
}

// runTailAnalytic cross-validates the tail estimators against closed forms
// on the one design where they exist exactly.
func (h *harness) runTailAnalytic(ctx context.Context) error {
	const fixture = "tail-analytic"
	oneInv, err := stats.NewHistogram(map[string]float64{"INV_X1": 1})
	if err != nil {
		return err
	}
	proc := allD2D()
	rng := stats.NewRNG(h.cfg.Seed, "conformance/"+fixture)
	nl, err := netlist.RandomCircuit(rng, "conf-"+fixture, 1, 16, oneInv, libArity(h.lib))
	if err != nil {
		return err
	}
	grid, err := placement.NewGrid(1, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return err
	}
	pl, err := placement.Random(rng, grid, 1)
	if err != nil {
		return err
	}
	cc, err := h.lib.Cell("INV_X1")
	if err != nil {
		return err
	}
	// Signal probability 1 pins the inverter input high: exactly one state
	// is reachable, so the state mixture collapses and leakage is a
	// deterministic monotone function of channel length.
	var st *charlib.StateChar
	for i := range cc.States {
		if cc.StateProb(cc.States[i].State, 1) == 1 {
			st = &cc.States[i]
			break
		}
	}
	if st == nil {
		return fmt.Errorf("conformance: INV_X1 has no state with probability 1 at signal probability 1")
	}
	mu, sigma := proc.LNominal, proc.TotalSigma()
	// Leakage falls as channel length grows on a physical characterization;
	// probe the direction like the tilt selector does so the closed forms
	// stay correct for any monotone curve.
	dec := st.Leakage(mu*1.01) < st.Leakage(mu*0.99)
	// quant is the exact leakage quantile: P[I ≤ quant(q)] = q. For a
	// decreasing f, Q_I(q) = f(µ + σ·Φ⁻¹(1−q)); the same formula at 1−p is
	// the spec whose exceedance probability is exactly p.
	quant := func(q float64) float64 {
		z := randvar.NormalQuantile(1 - q)
		if !dec {
			z = randvar.NormalQuantile(q)
		}
		return st.Leakage(mu + sigma*z)
	}

	qs := []float64{0.5, 0.9, 0.99}
	mcA, err := chipmc.RunContext(ctx, chipmc.Config{
		Lib: h.lib, Proc: proc, SignalProb: 1,
		Samples: tailPlainTrials, Seed: h.cfg.Seed, Workers: h.cfg.Workers, MaxGates: 1,
		Tail: &chipmc.TailConfig{Spec: quant(1 - tailPlainP), Quantiles: qs},
	}, nl, pl)
	if err != nil {
		return err
	}
	ta := mcA.Tail
	h.check(fixture, "tail/plain-exceedance-vs-closed-form", KindStatistical,
		ta.MCP, tailPlainP,
		Tolerance{Abs: mcZ * math.Sqrt(tailPlainP*(1-tailPlainP)/float64(tailPlainTrials))},
		fmt.Sprintf("spec at f(µ+σ·Φ⁻¹(p)) has exceedance exactly p; %d trials, tolerance %g·SE_binomial",
			tailPlainTrials, mcZ))
	h.checkBehavior(fixture, "tail/quantile-coverage", len(ta.Quantiles) == len(qs),
		fmt.Sprintf("requested %d quantiles, got %d", len(qs), len(ta.Quantiles)))
	for i, q := range qs {
		if i >= len(ta.Quantiles) {
			break
		}
		want := quant(q)
		// The sampled order statistic sits within z·SE_q of q in probability;
		// push that band through the exact quantile function to get the
		// allowed deviation in amperes (no density estimate needed).
		dq := mcZ * math.Sqrt(q*(1-q)/float64(tailPlainTrials))
		band := math.Max(math.Abs(quant(q+dq)-want), math.Abs(quant(q-dq)-want))
		h.check(fixture, fmt.Sprintf("tail/quantile-%g-vs-closed-form", q), KindStatistical,
			ta.Quantiles[i].Value, want, Tolerance{Abs: band},
			"order statistic vs f(µ+σ·Φ⁻¹); band = closed form evaluated at q±z·SE_q")
	}

	mcB, err := chipmc.RunContext(ctx, chipmc.Config{
		Lib: h.lib, Proc: proc, SignalProb: 1,
		Samples: tailDeepPrimary, Seed: h.cfg.Seed, Workers: h.cfg.Workers, MaxGates: 1,
		Tail: &chipmc.TailConfig{
			Spec:        quant(1 - tailDeepP),
			ISTrials:    tailDeepISTrials,
			WeightScale: h.tailWeightScale(),
		},
	}, nl, pl)
	if err != nil {
		return err
	}
	tb := mcB.Tail
	h.checkBehavior(fixture, "tail/is-healthy",
		tb.Source == chipmc.TailSourceIS && !tb.Degraded,
		fmt.Sprintf("the D2D-only design is the importance sampler's best case; source=%q degraded=%v reason=%q",
			tb.Source, tb.Degraded, tb.DegradedReason))
	h.check(fixture, "tail/is-exceedance-vs-closed-form", KindStatistical,
		tb.P, tailDeepP, Tolerance{Abs: mcZ * tb.SE},
		fmt.Sprintf("tilted estimator vs the exact value at P=%g; %d IS trials, θ=%.2f, hit ESS %.0f",
			tailDeepP, tailDeepISTrials, tb.Shift, tb.HitESS))
	return nil
}

// runTailBrute cross-validates the importance sampler against a brute-force
// plain-MC referee on a correlated placed circuit, and holds it to the
// trial-budget claim: matching accuracy at ≤ 1/20 of the referee's trials.
func (h *harness) runTailBrute(ctx context.Context) error {
	const fixture = "tail-brute"
	mixed, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 2, "NOR2_X1": 2, "XOR2_X1": 1,
	})
	if err != nil {
		return err
	}
	// D2D-heavy split (90 % of the variance in the shared deviate) with the
	// tight correlation kernel: the regime the one-dimensional tilt is built
	// for, while the remaining within-die field keeps the fixture honest —
	// chip leakage is not a deterministic function of the tilted scalar.
	base := spatial.Default90nm()
	tot := base.TotalSigma()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: tot * math.Sqrt(0.9),
		SigmaWID: tot * math.Sqrt(0.1),
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 6, R: 24},
	}
	const n = 36 // 6×6 sites: small enough that a 10⁶-trial dense referee stays affordable
	bruteN, pStar := 1_000_000, 1e-4
	primaryN, isN := 10_000, 40_000
	if h.cfg.Short {
		bruteN, pStar = 200_000, 1e-3
		primaryN, isN = 2_000, 8_000
	}

	rng := stats.NewRNG(h.cfg.Seed, "conformance/"+fixture)
	nl, err := netlist.RandomCircuit(rng, "conf-"+fixture, n, 16, mixed, libArity(h.lib))
	if err != nil {
		return err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return err
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		return err
	}
	// Place the spec from the analytic truth's lognormal fit, independent of
	// every MC sample: the fit only needs to land the spec near P ≈ p*, and
	// both estimators then measure the same exact quantity at it.
	spec, err := core.ExtractSpec(nl, pl, 0.5)
	if err != nil {
		return err
	}
	em, err := core.NewModelCtx(ctx, h.lib, proc, spec, core.Analytic)
	if err != nil {
		return err
	}
	em.Workers = h.cfg.Workers
	truth, err := core.TrueStatsCtx(ctx, em, nl, pl)
	if err != nil {
		return err
	}
	dist, err := core.DistributionOf(truth)
	if err != nil {
		return err
	}
	specA := dist.Quantile(1 - pStar)

	brute, err := chipmc.RunContext(ctx, chipmc.Config{
		Lib: h.lib, Proc: proc, SignalProb: 0.5,
		Samples: bruteN, Seed: h.cfg.Seed, Workers: h.cfg.Workers, MaxGates: n,
		Tail: &chipmc.TailConfig{Spec: specA},
	}, nl, pl)
	if err != nil {
		return err
	}
	is, err := chipmc.RunContext(ctx, chipmc.Config{
		Lib: h.lib, Proc: proc, SignalProb: 0.5,
		Samples: primaryN, Seed: h.cfg.Seed, Workers: h.cfg.Workers, MaxGates: n,
		Tail: &chipmc.TailConfig{
			Spec:        specA,
			ISTrials:    isN,
			WeightScale: h.tailWeightScale(),
		},
	}, nl, pl)
	if err != nil {
		return err
	}
	bt, it := brute.Tail, is.Tail

	h.checkBehavior(fixture, "tail/referee-resolves", bt.MCHits >= 20,
		fmt.Sprintf("the %d-trial referee needs enough hits to referee at all; got %d at spec %.3g A",
			bruteN, bt.MCHits, specA))
	h.checkBehavior(fixture, "tail/is-healthy",
		it.Source == chipmc.TailSourceIS && !it.Degraded,
		fmt.Sprintf("importance sampling must stay healthy on the D2D-heavy fixture; source=%q degraded=%v reason=%q",
			it.Source, it.Degraded, it.DegradedReason))
	h.check(fixture, "tail/is-vs-brute-mc", KindStatistical, it.P, bt.MCP,
		Tolerance{Abs: mcZ * math.Hypot(it.SE, bt.MCSE)},
		fmt.Sprintf("%d-trial tilted IS vs a %d-trial plain referee near P≈%g (θ=%.2f, hit ESS %.0f)",
			isN, bruteN, pStar, it.Shift, it.HitESS))
	h.checkBehavior(fixture, "tail/is-trial-budget", primaryN+isN <= bruteN/20,
		fmt.Sprintf("IS spends %d total trials against the referee's %d — must stay within 1/20",
			primaryN+isN, bruteN))
	h.checkBehavior(fixture, "tail/is-se-at-one-twentieth-trials", it.SE <= bt.MCSE,
		fmt.Sprintf("equal-or-better standard error on 1/20 the trials: SE_IS=%.3g vs SE_referee=%.3g",
			it.SE, bt.MCSE))
	return nil
}
