package conformance

import (
	"context"
	"fmt"
)

// Mutation perturbs one estimator moment before the checks run. It exists
// so the harness can prove its own sensitivity: a verification gate that
// passes everything verifies nothing.
type Mutation struct {
	// Target names the estimator to perturb: linear, truth, integral2d,
	// polar, or naive.
	Target string `json:"target"`
	// Moment selects mean or std.
	Moment string `json:"moment"`
	// Factor multiplies the chosen moment (1.01 = a 1 % bias).
	Factor float64 `json:"factor"`
}

// SelfCheckFactor is the perturbation the self-check injects: 1 %, the
// sensitivity floor ISSUE-level acceptance demands the harness detect.
const SelfCheckFactor = 1.01

// SelfCheckResult records one mutation run: how many checks tripped.
type SelfCheckResult struct {
	Target string `json:"target"`
	Moment string `json:"moment"`
	// Failed counts the checks the mutated run failed; Caught is Failed > 0.
	Failed int  `json:"failed"`
	Caught bool `json:"caught"`
}

// mutationTargets is the full matrix of estimator moments the self-check
// perturbs. The chip-level Monte Carlo is deliberately absent: its gates are
// standard-error-sized, and at CI trial counts a 1 % bias sits below the SE
// noise floor — a statistical gate cannot and should not resolve it.
var mutationTargets = []string{"linear", "truth", "integral2d", "polar", "naive"}

// MutationSelfCheck runs the lite harness once per (target, moment) with
// that moment biased by 1 % and reports whether each run failed. Every
// entry must come back Caught; AllCaught folds that for callers.
func MutationSelfCheck(ctx context.Context, cfg Config) ([]SelfCheckResult, error) {
	cfg = cfg.withDefaults()
	cfg.lite = true
	var out []SelfCheckResult
	for _, target := range mutationTargets {
		for _, moment := range []string{"mean", "std"} {
			cfg.Mutation = &Mutation{Target: target, Moment: moment, Factor: SelfCheckFactor}
			rep, err := Run(ctx, cfg)
			if err != nil {
				return out, fmt.Errorf("conformance: self-check %s/%s: %w", target, moment, err)
			}
			out = append(out, SelfCheckResult{
				Target: target, Moment: moment,
				Failed: rep.Failed, Caught: rep.Failed > 0,
			})
		}
	}
	return out, nil
}

// AllCaught reports whether every mutation run tripped at least one check.
func AllCaught(results []SelfCheckResult) bool {
	for _, r := range results {
		if !r.Caught {
			return false
		}
	}
	return len(results) > 0
}
