package conformance

import (
	"context"
	"fmt"
)

// Mutation perturbs one estimator moment before the checks run. It exists
// so the harness can prove its own sensitivity: a verification gate that
// passes everything verifies nothing.
type Mutation struct {
	// Target names the estimator to perturb: linear, truth, integral2d,
	// polar, naive, or tail-is (the importance-sampled tail estimator).
	Target string `json:"target"`
	// Moment selects mean or std for the moment targets; the tail-is target
	// uses "exceedance" (there is only one quantity to bias).
	Moment string `json:"moment"`
	// Factor multiplies the chosen moment (1.01 = a 1 % bias). For tail-is
	// it becomes the uniform IS weight mis-scaling applied through
	// chipmc.TailConfig.WeightScale.
	Factor float64 `json:"factor"`
}

// SelfCheckFactor is the perturbation the self-check injects: 1 %, the
// sensitivity floor ISSUE-level acceptance demands the harness detect.
const SelfCheckFactor = 1.01

// TailSelfCheckFactor is the weight mis-scaling the tail self-check injects
// into the importance sampler: 2×, not 1 %. The tail gates are statistical
// (z·SE comparisons at deep probabilities), so a 1 % bias sits below their
// noise floor for the same reason the chipmc moments are excluded from the
// 1 % matrix. A doubled weight is the smallest realistic bug shape — a
// dropped factor of two in the likelihood ratio — and must trip the
// exceedance gate by a wide margin.
const TailSelfCheckFactor = 2.0

// SelfCheckResult records one mutation run: how many checks tripped.
type SelfCheckResult struct {
	Target string `json:"target"`
	Moment string `json:"moment"`
	// Factor is the perturbation this run injected (SelfCheckFactor for the
	// moment matrix, TailSelfCheckFactor for the tail-is entry).
	Factor float64 `json:"factor"`
	// Failed counts the checks the mutated run failed; Caught is Failed > 0.
	Failed int  `json:"failed"`
	Caught bool `json:"caught"`
}

// mutationTargets is the full matrix of estimator moments the self-check
// perturbs. The chip-level Monte Carlo is deliberately absent: its gates are
// standard-error-sized, and at CI trial counts a 1 % bias sits below the SE
// noise floor — a statistical gate cannot and should not resolve it.
var mutationTargets = []string{"linear", "truth", "integral2d", "polar", "naive"}

// MutationSelfCheck runs the lite harness once per (target, moment) with
// that moment biased by 1 % and reports whether each run failed. Every
// entry must come back Caught; AllCaught folds that for callers.
func MutationSelfCheck(ctx context.Context, cfg Config) ([]SelfCheckResult, error) {
	cfg = cfg.withDefaults()
	cfg.lite = true
	var out []SelfCheckResult
	for _, target := range mutationTargets {
		for _, moment := range []string{"mean", "std"} {
			cfg.Mutation = &Mutation{Target: target, Moment: moment, Factor: SelfCheckFactor}
			rep, err := Run(ctx, cfg)
			if err != nil {
				return out, fmt.Errorf("conformance: self-check %s/%s: %w", target, moment, err)
			}
			out = append(out, SelfCheckResult{
				Target: target, Moment: moment, Factor: SelfCheckFactor,
				Failed: rep.Failed, Caught: rep.Failed > 0,
			})
		}
	}
	// The tail estimator gets its own entry: a 2× IS weight mis-scaling
	// rides through chipmc.TailConfig.WeightScale on the tailOnly run (the
	// cheap single-gate analytic fixture) and must trip the z·SE exceedance
	// gate — proving the tail harness, like the moment harness, has teeth.
	tcfg := cfg
	tcfg.tailOnly = true
	tcfg.Mutation = &Mutation{Target: "tail-is", Moment: "exceedance", Factor: TailSelfCheckFactor}
	rep, err := Run(ctx, tcfg)
	if err != nil {
		return out, fmt.Errorf("conformance: self-check tail-is/exceedance: %w", err)
	}
	out = append(out, SelfCheckResult{
		Target: "tail-is", Moment: "exceedance", Factor: TailSelfCheckFactor,
		Failed: rep.Failed, Caught: rep.Failed > 0,
	})
	return out, nil
}

// AllCaught reports whether every mutation run tripped at least one check.
func AllCaught(results []SelfCheckResult) bool {
	for _, r := range results {
		if !r.Caught {
			return false
		}
	}
	return len(results) > 0
}
