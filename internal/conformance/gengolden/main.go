// Command gengolden regenerates internal/conformance/testdata/golden.json:
// the frozen E1–E6 experiment-shape scalars with their declared tolerances
// and recorded-envelope bounds. Run it via `go generate
// ./internal/conformance` after any change that legitimately moves the
// numbers, and review the diff — the envelope bounds still gate the new
// values, so a regression cannot be frozen in.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"leakest/internal/conformance"
)

func main() {
	entries, err := conformance.ComputeGolden(context.Background(), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	data, err := conformance.WriteGoldenFile(entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	// go:generate runs with the package directory as cwd.
	path := filepath.Join("testdata", "golden.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gengolden:", err)
		os.Exit(1)
	}
	fmt.Printf("gengolden: wrote %d entries to %s\n", len(entries), path)
}
