package conformance

import (
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// Fixture is one deterministic verification scenario: a process corner and
// a layout, over which the harness cross-validates every estimation path.
type Fixture struct {
	Name string
	Proc *spatial.Process
	Hist *stats.Histogram
	// Rows × Cols is the full-occupancy RG site grid (N = Rows·Cols,
	// W = Cols·pitch, H = Rows·pitch), so the linear method needs no
	// occupancy scaling and the brute-force reference is exact.
	Rows, Cols int
	SignalProb float64
	// PolarOK marks fixtures whose correlation range fits the die, so the
	// polar estimator must succeed; PolarRefused marks fixtures where it
	// must return a typed InvalidInput instead. Both false skips polar.
	PolarOK      bool
	PolarRefused bool
	// Placed adds the placed-circuit checks (O(n²) truth vs an independent
	// serial reference, truth vs the RG estimate); MC adds the chip-level
	// Monte-Carlo cross-validation. Both only make sense on square grids.
	Placed, MC bool
	// IntErrBoundPct bounds the |integral-2d vs linear| σ error (percent).
	// Zero selects the E7 recorded envelope at N; fixtures off the E7
	// corner (non-paper λ/pitch ratios, extreme aspect, n = 1) carry an
	// explicit measured bound instead.
	IntErrBoundPct float64
	// PolarErrBoundPct bounds the |polar vs integral-2d| σ error (percent).
	PolarErrBoundPct float64
}

// N returns the gate count.
func (f Fixture) N() int { return f.Rows * f.Cols }

// corner builds a process with the shared-library sigma split (so the
// cached characterization stays valid) and the given WID correlation.
func corner(wid spatial.CorrFunc) *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  wid,
	}
}

// allD2D puts the entire budget in the die-to-die term: no within-die
// correlation function at all (ρ_total ≡ 1).
func allD2D() *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.TotalSigma(),
		SigmaVt:  base.SigmaVt,
	}
}

// allWID puts the entire budget in the within-die term.
func allWID(wid spatial.CorrFunc) *spatial.Process {
	base := spatial.Default90nm()
	return &spatial.Process{
		LNominal: base.LNominal,
		SigmaWID: base.TotalSigma(),
		SigmaVt:  base.SigmaVt,
		WIDCorr:  wid,
	}
}

// Fixtures returns the deterministic fixture set. Short trims the square
// sides; the scenarios themselves are identical in both modes.
func Fixtures(short bool) ([]Fixture, error) {
	mixed, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 3, "NAND2_X1": 2, "NOR2_X1": 2, "XOR2_X1": 1,
	})
	if err != nil {
		return nil, err
	}
	single, err := stats.NewHistogram(map[string]float64{"NAND2_X1": 1})
	if err != nil {
		return nil, err
	}
	oneInv, err := stats.NewHistogram(map[string]float64{"INV_X1": 1})
	if err != nil {
		return nil, err
	}
	side := 24
	if short {
		side = 16
	}
	// Chip-scale within-die correlation (the EXPERIMENTS.md process) and a
	// tight one whose hard range fits even the short die, so the polar
	// estimator is exercised in both modes.
	chip := spatial.TruncatedExpCorr{Lambda: 30, R: 120}
	tight := spatial.TruncatedExpCorr{Lambda: 6, R: 24}

	return []Fixture{
		{
			// The paper's own corner: mixed cells, chip-scale correlation,
			// square die. Carries the placed-circuit truth checks and the
			// Monte-Carlo cross-validation.
			Name: "baseline", Proc: corner(chip), Hist: mixed,
			Rows: side, Cols: side, SignalProb: 0.5,
			PolarRefused: true, // R = 120 µm exceeds the die side
			Placed:       true, MC: true,
			// Off the E7 corner (different mix and signal probability than
			// the paper sweep): measured ≈2.4 % at the short side, bounded
			// with ~3× margin.
			IntErrBoundPct: 7,
		},
		{
			// Extreme λ/R ratio, small side: correlation dies within three
			// site pitches, the polar method applies. The λ/pitch ratio is
			// far off the E7 corner, so the integral bound is the measured
			// envelope of this fixture (site granularity dominates).
			Name: "tight-corr", Proc: corner(tight), Hist: mixed,
			Rows: side, Cols: side, SignalProb: 0.3,
			PolarOK:        true,
			IntErrBoundPct: 30, PolarErrBoundPct: 2,
		},
		{
			// Degenerate 1×1 layout: one gate, one site. The continuum
			// integral is meaningless at n = 1 (Fig. 7's left edge grows
			// without bound), so only its finiteness is enveloped.
			Name: "one-gate", Proc: corner(chip), Hist: oneInv,
			Rows: 1, Cols: 1, SignalProb: 0.5,
			IntErrBoundPct: 80,
		},
		{
			// Single-cell histogram: no cell-mixing in the RG variable.
			Name: "single-cell", Proc: corner(chip), Hist: single,
			Rows: 12, Cols: 12, SignalProb: 0.5,
			IntErrBoundPct: 10,
		},
		{
			// All-D2D split: ρ_total ≡ 1, no within-die function at all.
			// Polar degenerates to the covariance floor (Dmax = 0) and must
			// agree with the 2-D integral almost exactly.
			Name: "all-d2d", Proc: allD2D(), Hist: mixed,
			Rows: 12, Cols: 12, SignalProb: 0.5,
			PolarOK:        true,
			IntErrBoundPct: 5, PolarErrBoundPct: 0.01,
		},
		{
			// All-WID split with the tight range: no covariance floor.
			Name: "all-wid", Proc: allWID(tight), Hist: mixed,
			Rows: side, Cols: side, SignalProb: 0.5,
			PolarOK:        true,
			IntErrBoundPct: 30, PolarErrBoundPct: 2,
		},
		{
			// λ/R far beyond the die: the polar method must refuse with a
			// typed InvalidInput; the near-constant covariance makes the
			// 2-D integral nearly exact.
			Name: "wide-corr", Proc: corner(spatial.TruncatedExpCorr{Lambda: 500, R: 2000}), Hist: mixed,
			Rows: 12, Cols: 12, SignalProb: 0.5,
			PolarRefused:   true,
			IntErrBoundPct: 5,
		},
		{
			// Extreme aspect ratio: 16:1 die, correlation range taller than
			// the short edge (polar refuses), integral error dominated by
			// the narrow dimension.
			Name: "skinny", Proc: corner(tight), Hist: mixed,
			Rows: 4, Cols: 64, SignalProb: 0.5,
			PolarRefused:   true,
			IntErrBoundPct: 30,
		},
	}, nil
}

// liteNames are the fixtures the mutation self-check runs: baseline covers
// the placed truth path, tight-corr covers the polar path.
var liteNames = map[string]bool{"baseline": true, "tight-corr": true}
