package conformance

import (
	"math"

	"leakest/internal/stats"
)

// Tolerance is a declared allowance for one comparison: the permitted
// absolute deviation at a reference value want is max(Abs, Rel·|want|).
// Exact identities carry a ULP-class Rel; statistical comparisons carry an
// Abs derived from a standard error and a z multiplier, so the tolerance
// scales with the trial count instead of being hand-tuned.
type Tolerance struct {
	Rel float64 `json:"rel,omitempty"`
	Abs float64 `json:"abs,omitempty"`
}

// Allowed returns the absolute deviation permitted at the reference value.
func (t Tolerance) Allowed(want float64) float64 {
	return math.Max(t.Abs, t.Rel*math.Abs(want))
}

// Exact is the ULP-class bound for identities that differ only by
// floating-point accumulation order (parallel shard merges, spline
// evaluations at nearly identical abscissae). 1e-9 relative leaves ~10⁶×
// headroom over observed double-precision reordering noise while still
// catching any 1e-8-level perturbation.
func Exact() Tolerance { return Tolerance{Rel: 1e-9, Abs: 0} }

// RelPct builds a relative tolerance from a percentage bound.
func RelPct(pct float64) Tolerance { return Tolerance{Rel: pct / 100} }

// MeanSETol is the variance-aware tolerance for a sampled mean against an
// analytic reference: z standard errors of the mean at the given trial
// count and per-trial standard deviation.
func MeanSETol(sigma float64, trials int, z float64) Tolerance {
	return Tolerance{Abs: z * stats.MeanSE(sigma, trials)}
}

// StdSETol is the variance-aware tolerance for a sampled standard deviation
// against an analytic reference: z normal-theory standard errors of the
// sample σ at the given trial count. The z multiplier is widened by callers
// when the population is heavy-tailed (the lognormal chip totals).
func StdSETol(sigma float64, trials int, z float64) Tolerance {
	return Tolerance{Abs: z * stats.StdSE(sigma, trials)}
}

// --- Recorded envelopes -------------------------------------------------
//
// EXPERIMENTS.md records the measured error envelope of every approximate
// path at seed 1. RecordedEnvelope turns those tables into bounds with
// documented headroom: size-dependent envelopes are interpolated log-log
// between the recorded sizes, extrapolated with the ~1/√n trend below the
// smallest recorded size, and held flat above the largest.

type anchor struct {
	n   int
	pct float64
}

// Size-dependent envelopes (percent), verbatim from EXPERIMENTS.md.
var recordedAnchors = map[string][]anchor{
	// E4 (Fig. 6): max deviation of random placed circuits from the RG
	// estimate, 10 circuits per size.
	"e4.envelope": {{100, 7.8}, {441, 6.0}, {1024, 3.7}, {2025, 1.6}, {5041, 1.5}, {11236, 0.85}},
	// E7 (Fig. 7): constant-time integral vs the linear method. The tail is
	// recorded as 0.00 % (sub-half-ULP of the table format); 0.01 keeps the
	// flat extrapolation meaningful.
	"e7.integral_err": {{25, 11.1}, {64, 5.0}, {256, 1.5}, {1024, 0.44}, {11236, 0.05}, {99856, 0.01}, {315844, 0.01}},
	"e7.polar_err":    {{25, 11.1}, {64, 5.0}, {256, 1.5}, {1024, 0.44}, {11236, 0.05}, {99856, 0.01}, {315844, 0.01}},
}

// Headroom over the recorded envelope: E4 fixtures are random circuits, so
// a reseeded run moves the measured maximum around; the quadrature-backed
// E7 numbers are stable.
var recordedHeadroom = map[string]float64{
	"e4.envelope":     2.0,
	"e7.integral_err": 1.5,
	"e7.polar_err":    1.5,
}

// Size-free envelopes, in the metric's native unit (percent unless noted).
var recordedFlat = map[string]float64{
	// E1: worst fit-vs-MC cell moment errors; the paper's own bounds.
	"e1.mean_err_max": 2.0,
	"e1.std_err_max":  10.0,
	// E2: |f(ρ)−ρ| identity deviation and MC mismatch (absolute, not
	// percent; measured 0.019 / 0.006, MC mismatch widened for the reduced
	// quick-mode sample count).
	"e2.identity_dev": 0.05,
	"e2.mc_mismatch":  0.05,
	// E5: worst ISCAS σ error (measured 1.99 % on c432, ×1.5 headroom for
	// reseeded synthetic circuits).
	"e5.std_err_worst": 3.0,
	// E6: the paper's own < 2.8 % bound on the simplified assumption.
	"e6.simpl_err_worst": 2.8,
}

// RecordedEnvelope returns the bound (with headroom folded in) that the
// named experiment metric must stay under, in the metric's native unit —
// percent for *_err/envelope metrics, absolute for the e2 deviations. n is
// the circuit size for size-dependent envelopes and ignored otherwise. ok
// is false for metrics with no recorded envelope.
func RecordedEnvelope(name string, n int) (bound float64, ok bool) {
	if v, found := recordedFlat[name]; found {
		return v, true
	}
	anchors, found := recordedAnchors[name]
	if !found {
		return 0, false
	}
	return interpEnvelope(anchors, n) * recordedHeadroom[name], true
}

// interpEnvelope interpolates the recorded envelope log-log in (n, pct):
// the error trends are power laws in n, so log-log interpolation follows
// the recorded shape instead of chording across decades.
func interpEnvelope(anchors []anchor, n int) float64 {
	if n <= anchors[0].n {
		// Extrapolate below the table with the ~1/√n trend.
		return anchors[0].pct * math.Sqrt(float64(anchors[0].n)/float64(n))
	}
	last := anchors[len(anchors)-1]
	if n >= last.n {
		return last.pct
	}
	for i := 1; i < len(anchors); i++ {
		a, b := anchors[i-1], anchors[i]
		if n > b.n {
			continue
		}
		t := (math.Log(float64(n)) - math.Log(float64(a.n))) /
			(math.Log(float64(b.n)) - math.Log(float64(a.n)))
		return math.Exp(math.Log(a.pct) + t*(math.Log(b.pct)-math.Log(a.pct)))
	}
	return last.pct
}
