package conformance

import (
	"math"
	"testing"
)

func TestToleranceAllowed(t *testing.T) {
	cases := []struct {
		tol  Tolerance
		want float64
		out  float64
	}{
		{Tolerance{Rel: 0.01}, 200, 2},
		{Tolerance{Abs: 5}, 200, 5},
		{Tolerance{Rel: 0.01, Abs: 5}, 200, 5},   // abs dominates small refs
		{Tolerance{Rel: 0.01, Abs: 5}, 2000, 20}, // rel dominates large refs
		{Tolerance{Rel: 0.01}, -200, 2},          // sign-free
		{RelPct(2), 100, 2},                      // percent helper
		{Exact(), 1e6, 1e-3},                     // ULP-class
	}
	for i, c := range cases {
		if got := c.tol.Allowed(c.want); math.Abs(got-c.out) > 1e-12*math.Abs(c.out) {
			t.Errorf("case %d: Allowed(%g) = %g, want %g", i, c.want, got, c.out)
		}
	}
}

func TestSETolerances(t *testing.T) {
	// z·σ/√n for the mean, z·σ/√(2(n−1)) for the σ.
	if got := MeanSETol(2, 400, 5).Abs; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanSETol = %g, want 0.5", got)
	}
	want := 5 * 2 / math.Sqrt(2*399)
	if got := StdSETol(2, 400, 5).Abs; math.Abs(got-want) > 1e-12 {
		t.Errorf("StdSETol = %g, want %g", got, want)
	}
	// Degenerate trial counts give an infinite (never-passing-silently,
	// always-passing-the-gate) allowance rather than a panic.
	if got := MeanSETol(2, 0, 5).Abs; !math.IsInf(got, 1) {
		t.Errorf("MeanSETol with 0 trials = %g, want +Inf", got)
	}
	if got := StdSETol(2, 1, 5).Abs; !math.IsInf(got, 1) {
		t.Errorf("StdSETol with 1 trial = %g, want +Inf", got)
	}
}

func TestRecordedEnvelope(t *testing.T) {
	// Flat metrics pass through verbatim.
	if b, ok := RecordedEnvelope("e6.simpl_err_worst", 0); !ok || b != 2.8 {
		t.Errorf("e6 bound = %g, %v; want 2.8, true", b, ok)
	}
	if _, ok := RecordedEnvelope("nonexistent", 100); ok {
		t.Error("unknown metric must report ok=false")
	}
	// At a recorded anchor the bound is the anchor times the headroom.
	if b, _ := RecordedEnvelope("e4.envelope", 1024); math.Abs(b-3.7*2.0) > 1e-12 {
		t.Errorf("e4 at anchor 1024 = %g, want %g", b, 3.7*2.0)
	}
	// Between anchors: strictly between the neighbours (log-log).
	b, _ := RecordedEnvelope("e7.integral_err", 500)
	if !(b < 1.5*1.5 && b > 0.44*1.5) {
		t.Errorf("e7 at 500 = %g, want within (%g, %g)", b, 0.44*1.5, 1.5*1.5)
	}
	// Below the table: grows with the 1/√n trend.
	small, _ := RecordedEnvelope("e7.integral_err", 4)
	first, _ := RecordedEnvelope("e7.integral_err", 25)
	if !(small > first) {
		t.Errorf("extrapolated bound at n=4 (%g) should exceed the first anchor (%g)", small, first)
	}
	// Above the table: held flat.
	big, _ := RecordedEnvelope("e7.integral_err", 1_000_000)
	last, _ := RecordedEnvelope("e7.integral_err", 315844)
	if big != last {
		t.Errorf("bound above the table = %g, want flat %g", big, last)
	}
	// The interpolant is monotone non-increasing across the whole span.
	prev := math.Inf(1)
	for n := 10; n <= 400_000; n = n*3/2 + 1 {
		b, _ := RecordedEnvelope("e4.envelope", n)
		if b > prev+1e-12 {
			t.Fatalf("envelope not monotone at n=%d: %g > %g", n, b, prev)
		}
		prev = b
	}
}
