package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/core"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
)

// mcZ is the z multiplier on Monte-Carlo standard errors. Five sigmas keep
// the deterministic seeded runs far from a flaky boundary while still
// failing loudly on any real bias; the σ comparison uses the normal-theory
// SE, which understates the lognormal totals' true error, and the wide z
// absorbs that too.
const mcZ = 5.0

// Run executes the full harness: every fixture, every estimation path,
// plus the golden gates. Check failures land in the report; only
// infrastructure errors (library characterization, model construction)
// return a non-nil error.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	lib, err := charlib.SharedCore()
	if err != nil {
		return nil, err
	}
	rep := &Report{Short: cfg.Short, Seed: cfg.Seed, Workers: cfg.Workers}
	h := &harness{cfg: cfg, lib: lib, rep: rep}
	if cfg.tailOnly {
		// The tail-is mutation self-check needs only the cheap analytic tail
		// gate; everything else would dilute its runtime for no sensitivity.
		if err := h.runTailAnalytic(ctx); err != nil {
			return nil, fmt.Errorf("conformance: tail-analytic: %w", err)
		}
		rep.tally()
		return rep, nil
	}
	fixtures, err := Fixtures(cfg.Short)
	if err != nil {
		return nil, err
	}
	for _, fx := range fixtures {
		if cfg.lite && !liteNames[fx.Name] {
			continue
		}
		if cfg.lite {
			fx.MC = false
		}
		if err := h.runFixture(ctx, fx); err != nil {
			return nil, fmt.Errorf("conformance: fixture %s: %w", fx.Name, err)
		}
	}
	if !cfg.lite {
		if err := h.runGolden(ctx); err != nil {
			return nil, err
		}
		if err := h.runTailAnalytic(ctx); err != nil {
			return nil, fmt.Errorf("conformance: tail-analytic: %w", err)
		}
		if err := h.runTailBrute(ctx); err != nil {
			return nil, fmt.Errorf("conformance: tail-brute: %w", err)
		}
	}
	rep.tally()
	return rep, nil
}

type harness struct {
	cfg Config
	lib *charlib.Library
	rep *Report
}

// check records one numeric comparison.
func (h *harness) check(fixture, name, kind string, got, want float64, tol Tolerance, detail string) {
	allowed := tol.Allowed(want)
	m := margin(got, want, allowed)
	h.rep.Checks = append(h.rep.Checks, Check{
		Fixture: fixture, Name: name, Kind: kind,
		Got: got, Want: want, Tol: tol, Allowed: allowed,
		Margin: m, Pass: m <= 1, Detail: detail,
	})
}

// checkBehavior records a structural pass/fail expectation.
func (h *harness) checkBehavior(fixture, name string, pass bool, detail string) {
	m := 0.0
	if !pass {
		m = math.Inf(1)
	}
	h.rep.Checks = append(h.rep.Checks, Check{
		Fixture: fixture, Name: name, Kind: KindBehavior,
		Margin: m, Pass: pass, Detail: detail,
	})
}

// mutate applies the configured perturbation when the target matches —
// the hook MutationSelfCheck uses to prove the checks have teeth. The
// independent references are computed outside this hook, so a mutated
// estimator always disagrees with its reference.
func (h *harness) mutate(target string, r core.Result) core.Result {
	mu := h.cfg.Mutation
	if mu == nil || mu.Target != target {
		return r
	}
	switch mu.Moment {
	case "mean":
		r.Mean *= mu.Factor
	case "std":
		r.Std *= mu.Factor
	}
	return r
}

func (h *harness) runFixture(ctx context.Context, fx Fixture) error {
	n := fx.N()
	spec := core.DesignSpec{
		Hist: fx.Hist, N: n,
		W:          float64(fx.Cols) * placement.DefaultSitePitch,
		H:          float64(fx.Rows) * placement.DefaultSitePitch,
		SignalProb: fx.SignalProb,
	}
	m, err := core.NewModelCtx(ctx, h.lib, fx.Proc, spec, core.Analytic)
	if err != nil {
		return err
	}
	m.Workers = h.cfg.Workers
	nMean := float64(n) * m.MeanPerGate()

	// --- O(n) linear vs brute-force Eq. 15 over the full site grid ------
	lin, err := m.EstimateLinearCtx(ctx)
	if err != nil {
		return err
	}
	lin = h.mutate("linear", lin)
	h.checkBehavior(fx.Name, "linear/full-occupancy", lin.Note == "",
		"fixture grids are full-occupancy; occupancy scaling must not engage")
	h.check(fx.Name, "linear/mean-identity", KindExact, lin.Mean, nMean, Exact(),
		"every RG estimator's mean is n·µ_XI")
	brute := bruteStd(m, lin.GridRows, lin.GridCols)
	h.check(fx.Name, "linear/std-vs-brute-force", KindExact, lin.Std, brute, Exact(),
		"Eq. 17 distance regrouping ≡ Eq. 15 site-pair sum")

	// --- naive baseline: an exact closed form ---------------------------
	naive, err := m.EstimateNaiveCtx(ctx)
	if err != nil {
		return err
	}
	naive = h.mutate("naive", naive)
	h.check(fx.Name, "naive/mean-identity", KindExact, naive.Mean, nMean, Exact(), "")
	h.check(fx.Name, "naive/std-identity", KindExact, naive.Std,
		math.Sqrt(float64(n)*m.RGVariance()), Exact(), "independence baseline is √(n·σ²_XI)")

	// --- O(1) 2-D integral ----------------------------------------------
	integ, err := m.EstimateIntegral2DCtx(ctx)
	if err != nil {
		return err
	}
	integ = h.mutate("integral2d", integ)
	h.check(fx.Name, "integral2d/mean-identity", KindExact, integ.Mean, nMean, Exact(), "")
	h.check(fx.Name, "integral2d/std-vs-refined-quadrature", KindExact,
		integ.Std, integral2DRefStd(m), Tolerance{Rel: 1e-3},
		"same Eq. 20 integrand at twice the panel count; only quadrature error remains")
	intBound := fx.IntErrBoundPct
	detail := "measured envelope of this off-corner fixture"
	if intBound == 0 {
		intBound, _ = RecordedEnvelope("e7.integral_err", n)
		detail = "E7 recorded envelope at this size"
	}
	h.check(fx.Name, "integral2d/std-vs-linear", KindApprox, integ.Std, lin.Std,
		RelPct(intBound), detail)

	// --- O(1) polar integral --------------------------------------------
	polar, perr := m.EstimatePolarCtx(ctx)
	switch {
	case fx.PolarRefused:
		h.checkBehavior(fx.Name, "polar/typed-refusal",
			perr != nil && errors.Is(perr, lkerr.ErrInvalidInput),
			fmt.Sprintf("correlation range beyond min(W,H) must refuse with InvalidInput; got %v", perr))
	case fx.PolarOK:
		if perr != nil {
			return perr
		}
		polar = h.mutate("polar", polar)
		h.check(fx.Name, "polar/mean-identity", KindExact, polar.Mean, nMean, Exact(), "")
		h.check(fx.Name, "polar/std-vs-refined-quadrature", KindExact,
			polar.Std, polarRefStd(m), Tolerance{Rel: 1e-3},
			"same Eqs. 25–26 integrand at twice the panel count")
		pBound := fx.PolarErrBoundPct
		if pBound == 0 {
			pBound, _ = RecordedEnvelope("e7.polar_err", n)
		}
		h.check(fx.Name, "polar/std-vs-integral2d", KindApprox, polar.Std, integ.Std,
			RelPct(pBound), "the two O(1) continuum approximations must agree")
	}

	if fx.Placed {
		if err := h.runPlaced(ctx, fx, m); err != nil {
			return err
		}
	}
	return nil
}

// runPlaced builds a seeded random placed circuit on the fixture grid and
// cross-validates the O(n²) truth path and (optionally) the chip-level
// Monte Carlo against it.
func (h *harness) runPlaced(ctx context.Context, fx Fixture, m *core.Model) error {
	n := fx.N()
	rng := stats.NewRNG(h.cfg.Seed, "conformance/"+fx.Name)
	nl, err := netlist.RandomCircuit(rng, "conf-"+fx.Name, n, 16, fx.Hist, libArity(h.lib))
	if err != nil {
		return err
	}
	grid, err := placement.NewGrid(n, placement.DefaultSitePitch, placement.DefaultSitePitch,
		float64(fx.Cols)/float64(fx.Rows))
	if err != nil {
		return err
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		return err
	}
	// The extracted spec replaces the fixture histogram with the realized
	// one (the late-mode flow), making Σµ_g = n·µ_XI an identity.
	spec, err := core.ExtractSpec(nl, pl, fx.SignalProb)
	if err != nil {
		return err
	}
	em, err := core.NewModelCtx(ctx, h.lib, fx.Proc, spec, core.Analytic)
	if err != nil {
		return err
	}
	em.Workers = h.cfg.Workers

	truth, err := core.TrueStatsCtx(ctx, em, nl, pl)
	if err != nil {
		return err
	}
	truth = h.mutate("truth", truth)
	refMean, refStd, err := serialTruthRef(em, nl, pl)
	if err != nil {
		return err
	}
	h.check(fx.Name, "truth/mean-vs-serial-reference", KindExact, truth.Mean, refMean, Exact(),
		"row-sharded Eq. 15 vs an independent serial accumulation")
	h.check(fx.Name, "truth/std-vs-serial-reference", KindExact, truth.Std, refStd, Exact(), "")
	h.check(fx.Name, "truth/mean-identity", KindExact, truth.Mean,
		float64(n)*em.MeanPerGate(), Exact(),
		"extracted histogram makes Σµ_g = n·µ_XI exact (the E5 observation)")

	lin, err := em.EstimateLinearCtx(ctx)
	if err != nil {
		return err
	}
	lin = h.mutate("linear", lin)
	e4Bound, _ := RecordedEnvelope("e4.envelope", n)
	h.check(fx.Name, "truth/std-vs-rg-estimate", KindApprox, truth.Std, lin.Std,
		RelPct(e4Bound), "one placed circuit against the RG abstraction (E4 envelope)")

	if fx.MC {
		trials := 1500
		if h.cfg.Short {
			trials = 400
		}
		mc, err := chipmc.RunContext(ctx, chipmc.Config{
			Lib: h.lib, Proc: fx.Proc, SignalProb: fx.SignalProb,
			Samples: trials, Seed: h.cfg.Seed, Workers: h.cfg.Workers, MaxGates: n,
		}, nl, pl)
		if err != nil {
			return err
		}
		h.check(fx.Name, "chipmc/mean-vs-truth", KindStatistical, mc.Mean, truth.Mean,
			Tolerance{Abs: mcZ * mc.MeanSE()},
			fmt.Sprintf("%d trials, tolerance %g·SE_mean", mc.Samples, mcZ))
		h.check(fx.Name, "chipmc/std-vs-truth", KindStatistical, mc.Std, truth.Std,
			StdSETol(truth.Std, mc.Samples, mcZ),
			fmt.Sprintf("%d trials, tolerance %g·SE_σ (normal theory)", mc.Samples, mcZ))
		h.checkBehavior(fx.Name, "chipmc/quantile-order",
			mc.Q05 < mc.Mean && mc.Mean < mc.Q95,
			"sampled 5th/95th percentiles must bracket the mean")

		// The FFT grid sampler is an independent construction of the same
		// field distribution; its moments must agree with the dense referee
		// within the combined standard errors of two independent MC runs.
		fftmc, err := chipmc.RunContext(ctx, chipmc.Config{
			Lib: h.lib, Proc: fx.Proc, SignalProb: fx.SignalProb,
			Samples: trials, Seed: h.cfg.Seed, Workers: h.cfg.Workers,
			MaxGates: n, Sampler: chipmc.SamplerFFT,
		}, nl, pl)
		if err != nil {
			return err
		}
		meanSE := math.Hypot(mc.MeanSE(), fftmc.MeanSE())
		stdSE := math.Hypot(stats.StdSE(mc.Std, mc.Samples), stats.StdSE(fftmc.Std, fftmc.Samples))
		h.check(fx.Name, "chipmc/fft-mean-vs-dense", KindStatistical, fftmc.Mean, mc.Mean,
			Tolerance{Abs: mcZ * meanSE},
			fmt.Sprintf("circulant-embedding sampler vs dense-Cholesky referee, %d trials each", trials))
		h.check(fx.Name, "chipmc/fft-std-vs-dense", KindStatistical, fftmc.Std, mc.Std,
			Tolerance{Abs: mcZ * stdSE},
			"independent samplers of the same field covariance must match in σ")
	}
	return nil
}

// runGolden recomputes the E1–E6 experiment shapes and compares them to
// the frozen values in testdata/golden.json.
func (h *harness) runGolden(ctx context.Context) error {
	frozen, err := FrozenGolden()
	if err != nil {
		return err
	}
	live, err := ComputeGolden(ctx, h.cfg.Workers)
	if err != nil {
		return err
	}
	liveByName := make(map[string]GoldenEntry, len(live))
	for _, e := range live {
		liveByName[e.Name] = e
	}
	h.checkBehavior("", "golden/coverage", len(frozen) == len(live),
		fmt.Sprintf("frozen entries %d, live entries %d — regenerate with `go generate ./internal/conformance`",
			len(frozen), len(live)))
	for _, fz := range frozen {
		lv, ok := liveByName[fz.Name]
		if !ok {
			h.checkBehavior("", "golden/"+fz.Name, false,
				"frozen entry no longer computed — regenerate the goldens")
			continue
		}
		h.check("", "golden/"+fz.Name, KindGolden, lv.Value, fz.Value, fz.Tol, fz.Note)
		if fz.Bound > 0 {
			h.check("", "golden/"+fz.Name+"/envelope", KindApprox, lv.Value, 0,
				Tolerance{Abs: fz.Bound},
				fmt.Sprintf("recorded envelope: value must stay under %g", fz.Bound))
		}
	}
	return nil
}
