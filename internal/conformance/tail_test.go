package conformance

import (
	"context"
	"strings"
	"testing"

	"leakest/internal/charlib"
)

// TestTailOnlyRun exercises the internal tailOnly mode the tail-is
// self-check rides on: only the analytic single-gate checks run, and on a
// healthy tree they all pass.
func TestTailOnlyRun(t *testing.T) {
	rep, err := Run(context.Background(), Config{Short: true, Workers: 1, tailOnly: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Checks) == 0 {
		t.Fatal("tailOnly run produced no checks")
	}
	for _, c := range rep.Checks {
		if c.Fixture != "tail-analytic" {
			t.Errorf("tailOnly run produced a %s/%s check; only tail-analytic belongs here", c.Fixture, c.Name)
		}
		if !c.Pass {
			t.Errorf("%s/%s failed on a healthy tree: got %g want %g (±%g) — %s",
				c.Fixture, c.Name, c.Got, c.Want, c.Allowed, c.Detail)
		}
	}
}

// TestTailMutationTripsGate proves the tail gate has teeth on its own: a 2×
// IS weight mis-scaling must fail the deep-tail exceedance check while
// leaving the plain-MC and quantile checks (which never see IS weights)
// untouched.
func TestTailMutationTripsGate(t *testing.T) {
	cfg := Config{Short: true, Workers: 1, tailOnly: true,
		Mutation: &Mutation{Target: "tail-is", Moment: "exceedance", Factor: TailSelfCheckFactor}}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tripped := false
	for _, c := range rep.Checks {
		isCheck := strings.Contains(c.Name, "is-exceedance")
		if isCheck && !c.Pass {
			tripped = true
			continue
		}
		if !isCheck && !c.Pass {
			t.Errorf("%s/%s failed but only the IS weights were mutated", c.Fixture, c.Name)
		}
	}
	if !tripped {
		t.Errorf("a %g× IS weight mis-scaling slipped through the tail gate", TailSelfCheckFactor)
	}
}

// TestTailGatesFull runs both tail gates at their full sizes — the
// 10⁶-trial brute-force referee at P ≈ 10⁻⁴ — pinning the acceptance
// criterion that the importance sampler matches the referee within z·SE
// while spending at most 1/20 of its trials at an equal-or-better standard
// error. Skipped under -short; the short harness covers the same gates at
// trimmed sizes.
func TestTailGatesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size tail gates run a 10⁶-trial referee")
	}
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatalf("SharedCore: %v", err)
	}
	cfg := Config{Workers: 1}.withDefaults()
	h := &harness{cfg: cfg, lib: lib, rep: &Report{}}
	ctx := context.Background()
	if err := h.runTailAnalytic(ctx); err != nil {
		t.Fatalf("runTailAnalytic: %v", err)
	}
	if err := h.runTailBrute(ctx); err != nil {
		t.Fatalf("runTailBrute: %v", err)
	}
	for _, c := range h.rep.Checks {
		if !c.Pass {
			t.Errorf("%s/%s failed at full size: got %g want %g (±%g) — %s",
				c.Fixture, c.Name, c.Got, c.Want, c.Allowed, c.Detail)
		}
	}
}

// TestTailMutationScope checks the tail mutation does not leak into
// unrelated targets: a moment-target mutation leaves the tail weight scale
// at its unbiased zero value.
func TestTailMutationScope(t *testing.T) {
	h := &harness{cfg: Config{Mutation: &Mutation{Target: "naive", Moment: "std", Factor: SelfCheckFactor}}}
	if s := h.tailWeightScale(); s != 0 {
		t.Errorf("moment mutation produced tail weight scale %g, want 0", s)
	}
	h = &harness{cfg: Config{Mutation: &Mutation{Target: "tail-is", Moment: "exceedance", Factor: 2}}}
	if s := h.tailWeightScale(); s != 2 {
		t.Errorf("tail mutation produced weight scale %g, want 2", s)
	}
	h = &harness{}
	if s := h.tailWeightScale(); s != 0 {
		t.Errorf("no mutation produced weight scale %g, want 0", s)
	}
}
