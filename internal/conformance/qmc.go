package conformance

import (
	"context"
	"fmt"
	"math"

	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// The quasi-Monte-Carlo conformance suite proves three things about the
// scrambled-Sobol sampler on one smooth seeded fixture:
//
//  1. Unbiasedness — the qmc moments agree with a frozen pseudo-random
//     dense referee within z·SE.
//  2. Acceleration — the RMSE of the qmc mean (measured as the spread over
//     scramble replicates; the estimator is unbiased, so replicate SD ≈
//     RMSE) at qmcEqualTrials trials must not exceed the plain-MC standard
//     error at qmcBaseTrials trials — a ≥5× trial reduction to equal SE —
//     and the log-log SE-vs-N slope must be materially steeper than the
//     −1/2 of pseudo-random sampling.
//  3. Non-interference — the dense and FFT referee runs on this fixture are
//     frozen in testdata/golden.json, so any change that perturbs the
//     pseudo-random paths while wiring in qmc fails the golden gate.
//
// QMCSelfCheck proves the suite has teeth by degrading the Sobol stream
// (unscrambled, pseudo-random) and requiring each degraded run to fail.

const (
	// qmcFixtureName labels every check of the suite.
	qmcFixtureName = "qmc-fig6"
	// qmcGates is the fixture size: a 6×6 die, small enough that the dense
	// qmc path runs fully low-discrepancy (36 ≤ randvar.SobolMaxDims).
	qmcGates = 36
	// qmcRefTrials sizes the frozen pseudo-random referee runs.
	qmcRefTrials = 4000
	// qmcBaseTrials is the plain-MC baseline trial count whose standard
	// error qmc must reach with qmcEqualTrials trials — the repo's default
	// sample count, making the gate the paper-facing claim "the default MC
	// budget shrinks ≥5×".
	qmcBaseTrials  = 2000
	qmcEqualTrials = 400
	// qmcReplicates is the number of independently scrambled replicates
	// behind each RMSE measurement. Eight keeps the replicate-SD noise
	// (~25 % relative, χ²₇) well below the gate margins at the default
	// seed while the whole sweep stays a sub-second workload.
	qmcReplicates = 8
	// qmcSlopeBound is the one-sided convergence-slope gate: scrambled
	// Sobol on the smooth fixture must beat −0.7 where pseudo-random
	// sampling is pinned at −1/2. The gap to −0.5 is ≈2× the replicate-
	// induced slope noise, so the gate neither flakes nor forgives.
	qmcSlopeBound = -0.7
	// qmcSlopeGap is how much steeper the qmc slope must be than the
	// measured pseudo-random slope of the same fixture and seeds.
	qmcSlopeGap = 0.15
)

// qmcSlopeTrials are the trial counts of the convergence sweep, log-spaced
// by 4× so the slope fit spans more than a decade.
var qmcSlopeTrials = []int{128, 512, 2048}

// qmcFixture builds the smooth Fig. 6-style fixture the suite runs on: a
// 6×6 random inverter circuit at signal probability 1 (one reachable state
// per gate, so a trial consumes no state-draw randomness and the chip
// total is a smooth function of the channel-length field alone) under a
// D2D-heavy 90/10 sigma split with a tight correlation kernel. The fixture
// is always built at DefaultSeed so the frozen referee goldens stay valid
// at any harness seed; cfg.Seed varies only the trial streams.
func qmcFixture(lib *charlib.Library) (*spatial.Process, *netlist.Netlist, *placement.Placement, error) {
	base := spatial.Default90nm()
	tot := base.TotalSigma()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: tot * math.Sqrt(0.9),
		SigmaWID: tot * math.Sqrt(0.1),
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 6, R: 24},
	}
	hist, err := stats.NewHistogram(map[string]float64{"INV_X1": 1})
	if err != nil {
		return nil, nil, nil, err
	}
	rng := stats.NewRNG(DefaultSeed, "conformance/"+qmcFixtureName)
	nl, err := netlist.RandomCircuit(rng, "conf-qmc", qmcGates, 8, hist, libArity(lib))
	if err != nil {
		return nil, nil, nil, err
	}
	grid, err := placement.NewGrid(qmcGates, placement.DefaultSitePitch, placement.DefaultSitePitch, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	pl, err := placement.Random(rng, grid, qmcGates)
	if err != nil {
		return nil, nil, nil, err
	}
	return proc, nl, pl, nil
}

// qmcReferee runs one frozen pseudo-random referee on the qmc fixture —
// always at DefaultSeed and qmcRefTrials, because its moments are frozen
// in testdata/golden.json.
func qmcReferee(ctx context.Context, lib *charlib.Library, workers int, sampler chipmc.Sampler) (chipmc.Result, error) {
	proc, nl, pl, err := qmcFixture(lib)
	if err != nil {
		return chipmc.Result{}, err
	}
	return chipmc.RunContext(ctx, chipmc.Config{
		Lib: lib, Proc: proc, SignalProb: 1, Samples: qmcRefTrials,
		Seed: DefaultSeed, Workers: workers, MaxGates: qmcGates, Sampler: sampler,
	}, nl, pl)
}

// qmcGoldenEntries freezes the dense and FFT referee moments on the qmc
// fixture. They ride in testdata/golden.json next to the E1–E6 shapes, so
// the qmc wiring cannot silently perturb either pseudo-random sampler:
// a bitwise change shows up as golden drift, here and in the full harness.
func qmcGoldenEntries(ctx context.Context, lib *charlib.Library, workers int) ([]GoldenEntry, error) {
	var out []GoldenEntry
	for _, s := range []chipmc.Sampler{chipmc.SamplerDense, chipmc.SamplerFFT} {
		res, err := qmcReferee(ctx, lib, workers, s)
		if err != nil {
			return nil, err
		}
		name := "qmc." + s.String() + "_ref"
		note := fmt.Sprintf("%s-sampler referee on the qmc fixture, %d trials — frozen so the qmc path cannot perturb it", s, qmcRefTrials)
		out = append(out,
			GoldenEntry{Name: name + "_mean", Value: res.Mean, Tol: goldenTol, Note: note},
			GoldenEntry{Name: name + "_std", Value: res.Std, Tol: goldenTol, Note: note},
		)
	}
	return out, nil
}

// RunQMC executes the quasi-Monte-Carlo conformance suite. Check failures
// land in the report; only infrastructure errors return non-nil.
func RunQMC(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	lib, err := charlib.SharedCore()
	if err != nil {
		return nil, err
	}
	rep := &Report{Short: cfg.Short, Seed: cfg.Seed, Workers: cfg.Workers}
	h := &harness{cfg: cfg, lib: lib, rep: rep}
	if err := h.runQMC(ctx); err != nil {
		return nil, fmt.Errorf("conformance: qmc: %w", err)
	}
	rep.tally()
	return rep, nil
}

func (h *harness) runQMC(ctx context.Context) error {
	const fx = qmcFixtureName
	proc, nl, pl, err := qmcFixture(h.lib)
	if err != nil {
		return err
	}
	// The mutation hook: a qmc-seq target threads its degrade mode into
	// every qmc run below, leaving the pseudo-random referees untouched.
	degrade := ""
	if mu := h.cfg.Mutation; mu != nil && mu.Target == "qmc-seq" {
		degrade = mu.Moment
	}

	// --- frozen referees: dense and fft stay bitwise unchanged ----------
	denseRef, err := qmcReferee(ctx, h.lib, h.cfg.Workers, chipmc.SamplerDense)
	if err != nil {
		return err
	}
	fftRef, err := qmcReferee(ctx, h.lib, h.cfg.Workers, chipmc.SamplerFFT)
	if err != nil {
		return err
	}
	frozen, err := FrozenGolden()
	if err != nil {
		return err
	}
	frozenByName := make(map[string]GoldenEntry, len(frozen))
	for _, e := range frozen {
		frozenByName[e.Name] = e
	}
	for _, ref := range []struct {
		name string
		res  chipmc.Result
	}{{"qmc.dense_ref", denseRef}, {"qmc.fft_ref", fftRef}} {
		for _, m := range []struct {
			suffix string
			got    float64
		}{{"_mean", ref.res.Mean}, {"_std", ref.res.Std}} {
			name := ref.name + m.suffix
			fz, ok := frozenByName[name]
			if !ok {
				h.checkBehavior(fx, "golden/"+name, false,
					"referee moment not frozen — regenerate with `go generate ./internal/conformance`")
				continue
			}
			h.check(fx, "golden/"+name, KindGolden, m.got, fz.Value, fz.Tol, fz.Note)
		}
	}
	// The two pseudo-random samplers are independent constructions of the
	// same field law; their moments must agree within combined z·SE.
	h.check(fx, "qmc/fft-ref-vs-dense-ref-mean", KindStatistical, fftRef.Mean, denseRef.Mean,
		Tolerance{Abs: mcZ * math.Hypot(denseRef.MeanSE(), fftRef.MeanSE())},
		fmt.Sprintf("independent referee samplers, %d trials each", qmcRefTrials))
	h.check(fx, "qmc/fft-ref-vs-dense-ref-std", KindStatistical, fftRef.Std, denseRef.Std,
		Tolerance{Abs: mcZ * math.Hypot(stats.StdSE(denseRef.Std, denseRef.Samples), stats.StdSE(fftRef.Std, fftRef.Samples))},
		"")

	// --- scramble-replicate sweeps --------------------------------------
	// runRep runs the qmc sampler with replicate r's derived seed: the
	// scramble (and every per-trial stream) is keyed off the run seed, so
	// distinct replicates are independently scrambled copies of the same
	// low-discrepancy estimator.
	runRep := func(trials, r int, deg string) (chipmc.Result, error) {
		seeds := stats.NewStream(h.cfg.Seed, fmt.Sprintf("conformance/qmc/n%d/rep#", trials))
		return chipmc.RunContext(ctx, chipmc.Config{
			Lib: h.lib, Proc: proc, SignalProb: 1, Samples: trials,
			Seed: seeds.SeedFor(r), Workers: h.cfg.Workers, MaxGates: qmcGates,
			Sampler: chipmc.SamplerQMC, QMCDegrade: deg,
		}, nl, pl)
	}
	// sweep returns the replicate means and their SD at one trial count.
	sweep := func(trials int, deg string) (sd float64, means []float64, err error) {
		means = make([]float64, qmcReplicates)
		for r := range means {
			res, err := runRep(trials, r, deg)
			if err != nil {
				return 0, nil, err
			}
			means[r] = res.Mean
		}
		return stats.StdDev(means), means, nil
	}

	qmcSD := make([]float64, len(qmcSlopeTrials))
	spreadOK := true
	var means128 []float64
	for i, n := range qmcSlopeTrials {
		sd, means, err := sweep(n, degrade)
		if err != nil {
			return err
		}
		qmcSD[i] = sd
		if sd <= 0 || math.IsNaN(sd) {
			spreadOK = false
		}
		if i == 0 {
			means128 = means
		}
	}
	// The comparison baseline: the same replicate seeds driven through the
	// counter-based pseudo-random degrade mode — plain MC with the qmc
	// plumbing, so the slope comparison isolates the sequence itself.
	pseudoSD := make([]float64, len(qmcSlopeTrials))
	for i, n := range qmcSlopeTrials {
		sd, _, err := sweep(n, "pseudo")
		if err != nil {
			return err
		}
		pseudoSD[i] = sd
	}

	// --- the statistical gates ------------------------------------------
	// Zero spread across scramble replicates means the scramble is inert —
	// the unscrambled-degrade failure mode — and would trivially satisfy
	// every ≤-shaped SE gate below, so it is rejected outright.
	h.checkBehavior(fx, "qmc/scramble-spread-positive", spreadOK,
		"replicate SD must be positive at every N: zero spread means scrambling is inert")

	// Unbiasedness: the largest-N qmc run against the dense referee. Its
	// error bar is the measured replicate SD; the referee adds its own SE.
	bigN := qmcSlopeTrials[len(qmcSlopeTrials)-1]
	big, err := runRep(bigN, 0, degrade)
	if err != nil {
		return err
	}
	meanTol := mcZ * math.Hypot(denseRef.MeanSE(), qmcSD[len(qmcSD)-1])
	h.check(fx, "qmc/mean-vs-dense-referee", KindStatistical, big.Mean, denseRef.Mean,
		Tolerance{Abs: meanTol},
		fmt.Sprintf("qmc at %d trials vs the %d-trial dense referee; tolerance %g·(referee SE ⊕ replicate SD)", bigN, qmcRefTrials, mcZ))
	stdTol := mcZ * math.Hypot(stats.StdSE(denseRef.Std, denseRef.Samples), stats.StdSE(denseRef.Std, bigN))
	h.check(fx, "qmc/std-vs-dense-referee", KindStatistical, big.Std, denseRef.Std,
		Tolerance{Abs: stdTol},
		"σ agreement; the pseudo-random SE at the qmc trial count bounds the qmc σ error conservatively")

	// Equal-SE trial ratio: the qmc RMSE at qmcEqualTrials must not exceed
	// the plain-MC standard error at qmcBaseTrials — reaching the default
	// MC budget's precision with 5× fewer trials. Reported as a ratio so
	// the margin is the acceleration headroom itself.
	sdEqual, _, err := sweep(qmcEqualTrials, degrade)
	if err != nil {
		return err
	}
	baseSE := denseRef.Std / math.Sqrt(float64(qmcBaseTrials))
	h.check(fx, "qmc/equal-se-trial-ratio", KindStatistical, sdEqual/baseSE, 0,
		Tolerance{Abs: 1},
		fmt.Sprintf("RMSE over %d scramble replicates at %d trials ÷ plain-MC SE at %d trials; ≤1 proves a ≥%d× trial reduction",
			qmcReplicates, qmcEqualTrials, qmcBaseTrials, qmcBaseTrials/qmcEqualTrials))

	// Convergence slope: fit ln SD against ln N. Scrambled Sobol must beat
	// qmcSlopeBound outright and beat the measured pseudo-random slope of
	// the same fixture and seeds by qmcSlopeGap. NaN slopes (degenerate
	// spreads) fail both inequalities.
	xs := make([]float64, len(qmcSlopeTrials))
	for i, n := range qmcSlopeTrials {
		xs[i] = float64(n)
	}
	slopeQ := stats.SlopeLogLog(xs, qmcSD)
	slopeP := stats.SlopeLogLog(xs, pseudoSD)
	h.checkBehavior(fx, "qmc/convergence-slope", slopeQ <= qmcSlopeBound,
		fmt.Sprintf("log-log SE slope %.3f over N=%v must be ≤ %.2f (plain MC converges at −0.5)",
			slopeQ, qmcSlopeTrials, qmcSlopeBound))
	h.checkBehavior(fx, "qmc/slope-beats-pseudo", slopeQ <= slopeP-qmcSlopeGap,
		fmt.Sprintf("qmc slope %.3f must be ≥%.2f steeper than the pseudo-random slope %.3f of the same seeds",
			slopeQ, qmcSlopeGap, slopeP))
	h.checkBehavior(fx, "qmc/pseudo-slope-sanity", !math.IsNaN(slopeP) && slopeP <= -0.2 && slopeP >= -0.8,
		fmt.Sprintf("pseudo-random comparison slope %.3f must sit near −0.5 for the gap gate to mean anything", slopeP))

	// Scramble variation and reproducibility: distinct replicate seeds
	// must move the estimate (an inert scramble is the unscrambled-degrade
	// bug shape), and re-running a replicate must reproduce it bitwise.
	varied := false
	for _, m := range means128[1:] {
		if m != means128[0] {
			varied = true
			break
		}
	}
	h.checkBehavior(fx, "qmc/scramble-variation", varied,
		"replicates with distinct scramble seeds must produce distinct estimates")
	again, err := runRep(qmcSlopeTrials[0], 0, degrade)
	if err != nil {
		return err
	}
	h.checkBehavior(fx, "qmc/replicate-reproducible", again.Mean == means128[0],
		"re-running a replicate at the same seed must reproduce its estimate bitwise")
	return nil
}

// qmcDegradeModes are the Sobol-stream degradations the self-check
// injects: "unscrambled" freezes the scramble (every replicate collapses
// onto one deterministic sequence), "pseudo" replaces the sequence with a
// counter-based pseudo-random stream (the acceleration disappears).
var qmcDegradeModes = []string{"unscrambled", "pseudo"}

// QMCSelfCheck proves the qmc suite has teeth: each degraded run must fail
// at least one check. Degradation replaces the generator rather than
// scaling a moment, so Factor is recorded as 1.
func QMCSelfCheck(ctx context.Context, cfg Config) ([]SelfCheckResult, error) {
	cfg = cfg.withDefaults()
	var out []SelfCheckResult
	for _, mode := range qmcDegradeModes {
		cfg.Mutation = &Mutation{Target: "qmc-seq", Moment: mode, Factor: 1}
		rep, err := RunQMC(ctx, cfg)
		if err != nil {
			return out, fmt.Errorf("conformance: qmc self-check %s: %w", mode, err)
		}
		out = append(out, SelfCheckResult{
			Target: "qmc-seq", Moment: mode, Factor: 1,
			Failed: rep.Failed, Caught: rep.Failed > 0,
		})
	}
	return out, nil
}
