// Package circuit evaluates the leakage of CMOS transistor networks.
//
// A standard cell's pull-up and pull-down networks are series/parallel
// compositions of MOSFETs. Given the input state, the network between the
// output and one rail is OFF and carries the cell's subthreshold leakage;
// the intermediate node voltages of series stacks settle where the device
// currents equalize, producing the well-known stack effect (an OFF stack of
// two leaks roughly an order of magnitude less than a single OFF device).
//
// The solver exploits monotonicity of the EKV-style device model: the
// current through any series/parallel network is strictly increasing in the
// top-terminal voltage and decreasing in the bottom-terminal voltage, so
// intermediate nodes can be found by nested bisection. An outer bisection on
// the shared branch current handles arbitrarily deep series chains without
// exponential nesting.
package circuit

import (
	"fmt"
	"math"

	"leakest/internal/device"
)

// netKind discriminates the network node types.
type netKind int

const (
	kindDevice netKind = iota
	kindSeries
	kindParallel
)

// Network is a series/parallel composition of MOSFETs. The zero value is
// not usable; construct with Dev, Series, or Parallel.
type Network struct {
	kind     netKind
	dev      device.MOSFET // for kindDevice
	gatePin  int           // signal index driving the gate (kindDevice)
	vtIdx    int           // per-device Vt-offset index, assigned by AssignVtIndices
	children []*Network
}

// Dev returns a leaf network: a single MOSFET whose gate is driven by the
// signal with index gatePin in the evaluation environment.
func Dev(m device.MOSFET, gatePin int) *Network {
	return &Network{kind: kindDevice, dev: m, gatePin: gatePin, vtIdx: -1}
}

// Series composes children top-to-bottom in series. A single child is
// returned unwrapped.
func Series(children ...*Network) *Network {
	if len(children) == 0 {
		panic("circuit: Series of zero children")
	}
	if len(children) == 1 {
		return children[0]
	}
	return &Network{kind: kindSeries, children: children}
}

// Parallel composes children in parallel. A single child is returned
// unwrapped.
func Parallel(children ...*Network) *Network {
	if len(children) == 0 {
		panic("circuit: Parallel of zero children")
	}
	if len(children) == 1 {
		return children[0]
	}
	return &Network{kind: kindParallel, children: children}
}

// AssignVtIndices walks the network and assigns consecutive per-device
// Vt-offset indices starting at next, returning the next unused index.
// Call once per cell after assembling all of its networks.
func (n *Network) AssignVtIndices(next int) int {
	switch n.kind {
	case kindDevice:
		n.vtIdx = next
		return next + 1
	default:
		for _, c := range n.children {
			next = c.AssignVtIndices(next)
		}
		return next
	}
}

// NumDevices returns the number of MOSFETs in the network.
func (n *Network) NumDevices() int {
	if n.kind == kindDevice {
		return 1
	}
	total := 0
	for _, c := range n.children {
		total += c.NumDevices()
	}
	return total
}

// Devices appends the MOSFETs of the network to out in Vt-index order
// (construction order) and returns the extended slice.
func (n *Network) Devices(out []device.MOSFET) []device.MOSFET {
	if n.kind == kindDevice {
		return append(out, n.dev)
	}
	for _, c := range n.children {
		out = c.Devices(out)
	}
	return out
}

// Env is the evaluation environment of one leakage query: the signal
// voltages (cell inputs and internal stage outputs), the shared channel
// length, and optional per-device threshold-voltage offsets.
type Env struct {
	// V holds the signal voltages indexed by gate pin.
	V []float64
	// L is the channel length shared by every device in the cell (the
	// paper's within-cell full correlation assumption), in µm.
	L float64
	// DVt holds per-device Vt offsets indexed by vtIdx; nil means zero.
	DVt []float64
}

func (e *Env) dvt(idx int) float64 {
	if e.DVt == nil || idx < 0 || idx >= len(e.DVt) {
		return 0
	}
	return e.DVt[idx]
}

// Bisection iteration counts. Voltage bisection halves a ≤2 V interval, so
// 36 iterations reach ~3·10⁻¹¹ V; current bisection runs in linear space
// over [0, Imax] and 52 iterations leave the interval at Imax·2⁻⁵², which is
// below one part in 10⁹ even relative to a stack current two decades under
// the bound. These counts dominate characterization runtime.
const (
	voltIters = 36
	currIters = 52
)

// Current returns the current flowing from the top terminal (at vt) to the
// bottom terminal (at vb) through the network, in amperes. It requires
// vt ≥ vb and returns a non-negative value.
func (n *Network) Current(vt, vb float64, env *Env) float64 {
	if vt < vb {
		panic(fmt.Sprintf("circuit: Current called with vt=%g < vb=%g", vt, vb))
	}
	if vt == vb {
		return 0
	}
	switch n.kind {
	case kindDevice:
		return n.deviceCurrent(vt, vb, env)
	case kindParallel:
		total := 0.0
		for _, c := range n.children {
			total += c.Current(vt, vb, env)
		}
		return total
	default: // kindSeries
		return n.seriesCurrent(vt, vb, env)
	}
}

// deviceCurrent evaluates the leaf MOSFET between (vt, vb). For NMOS the
// drain is the top terminal; for PMOS the source is the top terminal and
// the mirrored device model yields a negative value that is negated here.
func (n *Network) deviceCurrent(vt, vb float64, env *Env) float64 {
	vg := env.V[n.gatePin]
	i := n.dev.Ids(vg, vb, vt, env.L, env.dvt(n.vtIdx))
	if n.dev.Kind == device.PMOS {
		return -i
	}
	return i
}

// seriesCurrent solves a series chain by outer bisection on the shared
// current I. For a candidate I, the intermediate node voltages are
// propagated bottom-up: each child's top voltage is the value at which it
// carries exactly I given its bottom voltage. The residual (computed top
// voltage minus actual vt) is monotone increasing in I.
func (n *Network) seriesCurrent(vt, vb float64, env *Env) float64 {
	// Upper bound: each child alone across the full span carries at least
	// the chain current.
	iMax := math.Inf(1)
	for _, c := range n.children {
		if ic := c.Current(vt, vb, env); ic < iMax {
			iMax = ic
		}
	}
	if iMax <= 0 {
		return 0
	}
	// residual(I) = (voltage needed at top to carry I) − vt.
	vCap := vt + 1 // allow overshoot during the search
	// children[0] is the top of the chain, so the bottom-up propagation
	// walks the slice in reverse.
	residual := func(i float64) float64 {
		v := vb
		for ci := len(n.children) - 1; ci >= 0; ci-- {
			v = n.children[ci].solveTopVoltage(v, vCap, i, env)
			if v >= vCap {
				return vCap - vt // saturated: I is certainly too large
			}
		}
		return v - vt
	}
	lo, hi := 0.0, iMax
	if residual(hi) < 0 {
		// Degenerate (round-off near fully-on chains): the bound itself is
		// the answer within tolerance.
		return iMax
	}
	for iter := 0; iter < currIters; iter++ {
		mid := 0.5 * (lo + hi)
		if residual(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// solveTopVoltage returns the top-terminal voltage v ∈ [vb, vCap] at which
// the child network carries current i given bottom voltage vb. The child
// current is increasing in v, so bisection applies. If even vCap cannot
// carry i, vCap is returned.
func (n *Network) solveTopVoltage(vb, vCap, i float64, env *Env) float64 {
	if n.Current(vCap, vb, env) < i {
		return vCap
	}
	lo, hi := vb, vCap
	for iter := 0; iter < voltIters; iter++ {
		mid := 0.5 * (lo + hi)
		if n.Current(mid, vb, env) < i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// BiasedDevice is a MOSFET with explicitly specified terminal connections,
// used for structures outside the feed-forward stage model (e.g. the SRAM
// cell's access transistors, transmission gates with known node states).
// Each terminal voltage is produced from the signal vector by a selector.
type BiasedDevice struct {
	Dev device.MOSFET
	// VtIdx indexes the per-device Vt offset; assign alongside networks.
	VtIdx int
	// Gate, Source, Drain produce the terminal voltages from the signal
	// voltage vector.
	Gate, Source, Drain func(v []float64) float64
}

// Leakage returns the magnitude of the device current under the bias.
func (b BiasedDevice) Leakage(env *Env) float64 {
	vg := b.Gate(env.V)
	vs := b.Source(env.V)
	vd := b.Drain(env.V)
	return math.Abs(b.Dev.Ids(vg, vs, vd, env.L, env.dvt(b.VtIdx)))
}

// Rail returns a selector producing the constant voltage v.
func Rail(v float64) func([]float64) float64 {
	return func([]float64) float64 { return v }
}

// Sig returns a selector producing the voltage of signal idx.
func Sig(idx int) func([]float64) float64 {
	return func(v []float64) float64 { return v[idx] }
}

// GateLeakage returns the total gate tunneling current of every device in
// the network, using the device gate voltages from the environment and the
// nearest rail as the source-side reference (ground for NMOS, Vdd for
// PMOS — exact for on devices, conservative for stack-internal nodes). It
// is zero unless the technology card enables gate leakage.
func (n *Network) GateLeakage(vdd float64, env *Env) float64 {
	switch n.kind {
	case kindDevice:
		vs := 0.0
		if n.dev.Kind == device.PMOS {
			vs = vdd
		}
		return n.dev.GateLeak(env.V[n.gatePin], vs, env.L)
	default:
		total := 0.0
		for _, c := range n.children {
			total += c.GateLeakage(vdd, env)
		}
		return total
	}
}

// GateLeakage returns the gate tunneling current of the biased device.
func (b BiasedDevice) GateLeakage(env *Env) float64 {
	return b.Dev.GateLeak(b.Gate(env.V), b.Source(env.V), env.L)
}

// MapDevices applies f to every MOSFET in the network (in place), allowing
// technology-card adjustments such as enabling gate leakage after a cell
// has been assembled.
func (n *Network) MapDevices(f func(*device.MOSFET)) {
	if n.kind == kindDevice {
		f(&n.dev)
		return
	}
	for _, c := range n.children {
		c.MapDevices(f)
	}
}
