package circuit

import (
	"math"
	"testing"

	"leakest/internal/device"
)

func nmos(w float64) device.MOSFET { return device.NewMOSFET(device.NMOS, w, 0.09) }
func pmos(w float64) device.MOSFET { return device.NewMOSFET(device.PMOS, w, 0.09) }

const vdd = 1.0

func envL(v []float64) *Env { return &Env{V: v, L: 0.09} }

func TestSingleDeviceMatchesMOSFET(t *testing.T) {
	m := nmos(0.3)
	n := Dev(m, 0)
	env := envL([]float64{0}) // gate low: off
	got := n.Current(vdd, 0, env)
	want := m.Ids(0, 0, vdd, 0.09, 0)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("leaf current %g != device %g", got, want)
	}
	// PMOS leaf: gate high ⇒ off, top terminal is source at Vdd.
	p := pmos(0.6)
	np := Dev(p, 0)
	env = envL([]float64{vdd})
	got = np.Current(vdd, 0, env)
	want = p.OffLeakage(0.09, 0)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("pmos leaf %g != off leakage %g", got, want)
	}
}

func TestCurrentZeroSpan(t *testing.T) {
	n := Dev(nmos(0.3), 0)
	if i := n.Current(0.5, 0.5, envL([]float64{0})); i != 0 {
		t.Errorf("zero-span current = %g", i)
	}
}

func TestCurrentPanicsOnReversedTerminals(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for vt < vb")
		}
	}()
	Dev(nmos(0.3), 0).Current(0, 1, envL([]float64{0}))
}

func TestParallelAddsCurrents(t *testing.T) {
	a := Dev(nmos(0.3), 0)
	b := Dev(nmos(0.5), 1)
	p := Parallel(a, b)
	env := envL([]float64{0, 0})
	got := p.Current(vdd, 0, env)
	want := a.Current(vdd, 0, env) + b.Current(vdd, 0, env)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("parallel %g != sum %g", got, want)
	}
}

func TestStackEffect(t *testing.T) {
	// Two OFF NMOS in series must leak much less than one OFF NMOS —
	// the classic stack effect, roughly an order of magnitude.
	single := Dev(nmos(0.3), 0)
	stack2 := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1))
	stack3 := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1), Dev(nmos(0.3), 2))
	env := envL([]float64{0, 0, 0})
	i1 := single.Current(vdd, 0, env)
	i2 := stack2.Current(vdd, 0, env)
	i3 := stack3.Current(vdd, 0, env)
	if !(i1 > i2 && i2 > i3) {
		t.Fatalf("stack ordering violated: %g, %g, %g", i1, i2, i3)
	}
	if r := i1 / i2; r < 3 || r > 100 {
		t.Errorf("2-stack factor = %g, want order-of-magnitude suppression", r)
	}
	if i3 <= 0 {
		t.Errorf("3-stack current must remain positive, got %g", i3)
	}
}

func TestSeriesWithOnDeviceNearlyTransparent(t *testing.T) {
	// NAND2 pulldown with A=1 (on), B=0 (off): leakage ≈ single off device
	// with nearly full Vds (the ON device drops almost nothing); must be
	// well above the all-off stack and within ~2x of the single device.
	a := Dev(nmos(0.3), 0)
	b := Dev(nmos(0.3), 1)
	st := Series(a, b)
	iMixed := st.Current(vdd, 0, envL([]float64{vdd, 0}))
	iAllOff := st.Current(vdd, 0, envL([]float64{0, 0}))
	iSingle := Dev(nmos(0.3), 0).Current(vdd, 0, envL([]float64{0}))
	if !(iMixed > iAllOff) {
		t.Fatalf("mixed state %g should exceed all-off %g", iMixed, iAllOff)
	}
	if iMixed > iSingle*1.001 || iMixed < iSingle*0.3 {
		t.Errorf("mixed %g vs single %g: ON device should be nearly transparent", iMixed, iSingle)
	}
}

func TestSeriesCurrentContinuity(t *testing.T) {
	// Current must equal through a series chain: check by computing the
	// chain current and verifying the intermediate node found implies the
	// same current through each element (KCL at the internal node).
	top := Dev(nmos(0.3), 0)
	bot := Dev(nmos(0.4), 1)
	st := Series(top, bot)
	env := envL([]float64{0, 0})
	i := st.Current(vdd, 0, env)
	// Recover the internal node: bisect where bottom device carries i.
	vm := bot.solveTopVoltage(0, vdd, i, env)
	iTop := top.Current(vdd, vm, env)
	iBot := bot.Current(vm, 0, env)
	if math.Abs(iTop-iBot)/i > 1e-6 {
		t.Errorf("KCL violated: top %g vs bottom %g (chain %g)", iTop, iBot, i)
	}
	if math.Abs(iTop-i)/i > 1e-6 {
		t.Errorf("chain current %g inconsistent with element current %g", i, iTop)
	}
}

func TestSeriesOrderInvariance(t *testing.T) {
	// For two IDENTICAL off devices, reversing the order must not change
	// the current (the problem is symmetric). Devices of different widths
	// are genuinely order-dependent (the top device sees a raised source),
	// so only the identical case is exact.
	a := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1))
	b := Series(Dev(nmos(0.3), 1), Dev(nmos(0.3), 0))
	env := envL([]float64{0, 0})
	ia := a.Current(vdd, 0, env)
	ib := b.Current(vdd, 0, env)
	if math.Abs(ia-ib)/ia > 1e-6 {
		t.Errorf("order dependence: %g vs %g", ia, ib)
	}
	// Different widths: currents must still be within a factor of ~2 of
	// each other (the asymmetry is mild).
	c := Series(Dev(nmos(0.3), 0), Dev(nmos(0.6), 1))
	d := Series(Dev(nmos(0.6), 1), Dev(nmos(0.3), 0))
	ic := c.Current(vdd, 0, env)
	id := d.Current(vdd, 0, env)
	if r := ic / id; r < 0.5 || r > 2 {
		t.Errorf("asymmetric stack ratio = %g implausible", r)
	}
}

func TestNestedSeriesParallel(t *testing.T) {
	// AOI21 pulldown: Series(Parallel(a,b)... actually (a·b + c)' ⇒
	// PDN = Parallel(Series(a,b), c). All off: leakage ≈ single off (c) +
	// 2-stack (a,b); dominated by c.
	pdn := Parallel(Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1)), Dev(nmos(0.3), 2))
	env := envL([]float64{0, 0, 0})
	got := pdn.Current(vdd, 0, env)
	single := Dev(nmos(0.3), 2).Current(vdd, 0, env)
	stack := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1)).Current(vdd, 0, env)
	want := single + stack
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("AOI21 pdn %g != %g", got, want)
	}
	// OAI22-like: Series(Parallel, Parallel) — a genuinely nested solve.
	oai := Series(
		Parallel(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1)),
		Parallel(Dev(nmos(0.3), 2), Dev(nmos(0.3), 3)),
	)
	env4 := envL([]float64{0, 0, 0, 0})
	iOai := oai.Current(vdd, 0, env4)
	// Two parallel pairs in series ≈ stack of double-width devices: between
	// the 2-stack of single-width and the single device.
	i2 := Series(Dev(nmos(0.6), 0), Dev(nmos(0.6), 1)).Current(vdd, 0, envL([]float64{0, 0}))
	if math.Abs(iOai-i2)/i2 > 1e-3 {
		t.Errorf("OAI22 pdn %g, expected ≈ double-width stack %g", iOai, i2)
	}
}

func TestSeriesMonotoneInSpan(t *testing.T) {
	st := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1))
	env := envL([]float64{0, 0})
	prev := -1.0
	for v := 0.1; v <= 1.0; v += 0.1 {
		i := st.Current(v, 0, env)
		if i <= prev {
			t.Fatalf("series current not increasing at vt=%g", v)
		}
		prev = i
	}
}

func TestVtOffsetsThroughNetwork(t *testing.T) {
	st := Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1))
	n := st.AssignVtIndices(0)
	if n != 2 {
		t.Fatalf("AssignVtIndices returned %d, want 2", n)
	}
	env0 := &Env{V: []float64{0, 0}, L: 0.09}
	envHot := &Env{V: []float64{0, 0}, L: 0.09, DVt: []float64{-0.05, -0.05}}
	i0 := st.Current(vdd, 0, env0)
	iHot := st.Current(vdd, 0, envHot)
	if iHot <= i0 {
		t.Errorf("lower Vt must leak more: %g vs %g", iHot, i0)
	}
}

func TestNumDevicesAndDevices(t *testing.T) {
	netw := Parallel(Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1)), Dev(pmos(0.5), 2))
	if got := netw.NumDevices(); got != 3 {
		t.Errorf("NumDevices = %d, want 3", got)
	}
	devs := netw.Devices(nil)
	if len(devs) != 3 || devs[2].Kind != device.PMOS {
		t.Errorf("Devices wrong: %v", devs)
	}
}

func TestSingleChildUnwrapped(t *testing.T) {
	d := Dev(nmos(0.3), 0)
	if Series(d) != d || Parallel(d) != d {
		t.Errorf("single-child composition should unwrap")
	}
}

func TestEmptyCompositionPanics(t *testing.T) {
	for _, f := range []func(){func() { Series() }, func() { Parallel() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic on empty composition")
				}
			}()
			f()
		}()
	}
}

func TestBiasedDevice(t *testing.T) {
	m := nmos(0.3)
	bd := BiasedDevice{
		Dev:    m,
		VtIdx:  -1,
		Gate:   Rail(0),
		Source: Rail(0),
		Drain:  Sig(0),
	}
	env := envL([]float64{vdd})
	got := bd.Leakage(env)
	want := m.OffLeakage(0.09, 0)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("biased device leakage %g != %g", got, want)
	}
}

func TestPullUpNetworkOfPMOS(t *testing.T) {
	// NOR2 pull-up: two PMOS in series between Vdd and the output. With
	// inputs (0,1) output is 0; the PUN leaks with the B device off.
	pun := Series(Dev(pmos(0.6), 0), Dev(pmos(0.6), 1))
	envBoth := envL([]float64{vdd, vdd}) // both off: stack effect
	envOne := envL([]float64{0, vdd})    // A on, B off
	iBoth := pun.Current(vdd, 0, envBoth)
	iOne := pun.Current(vdd, 0, envOne)
	if !(iOne > iBoth && iBoth > 0) {
		t.Errorf("PMOS stack states wrong: both=%g one=%g", iBoth, iOne)
	}
}

func TestGateLeakageNetwork(t *testing.T) {
	// Default cards: zero gate leakage everywhere.
	n := Parallel(Series(Dev(nmos(0.3), 0), Dev(nmos(0.3), 1)), Dev(pmos(0.6), 0))
	env := envL([]float64{vdd, 0})
	if g := n.GateLeakage(vdd, env); g != 0 {
		t.Fatalf("default gate leakage = %g", g)
	}
	// Enable via MapDevices and re-check: only gate-driven-on devices
	// contribute materially.
	count := 0
	n.MapDevices(func(m *device.MOSFET) {
		m.Tech.JGate = 1e-7
		count++
	})
	if count != 3 {
		t.Fatalf("MapDevices visited %d devices", count)
	}
	g := n.GateLeakage(vdd, env)
	if g <= 0 {
		t.Fatalf("enabled gate leakage = %g", g)
	}
	// Signal 0 is high: the two NMOS on pin 0... pin0-driven NMOS is on
	// (full tunneling), pin1 NMOS off (negligible), PMOS gate high ⇒ off.
	want := 1e-7 * 0.3 * 0.09
	if math.Abs(g-want)/want > 0.01 {
		t.Errorf("gate leakage %g, want ≈ %g (one on NMOS)", g, want)
	}
	// Biased device path.
	bd := BiasedDevice{Dev: nmos(0.3), Gate: Rail(vdd), Source: Rail(0), Drain: Rail(vdd)}
	bd.Dev.Tech.JGate = 1e-7
	if got := bd.GateLeakage(envL(nil)); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("biased gate leakage %g, want %g", got, want)
	}
}
