package chipmc

import (
	"context"
	"math/rand"

	"leakest/internal/fault"
	"leakest/internal/fft"
	"leakest/internal/lkerr"
	"leakest/internal/parallel"
	"leakest/internal/randvar"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// This file is the quasi-Monte-Carlo trial fan-out behind SamplerQMC.
//
// Two trial bodies share one scrambled-Sobol sequence (randvar.SobolSeq):
//
//   - Grid path (large designs): trials come in Dietrich–Newsam pairs — the
//     real and imaginary parts of one inverse-transformed pair torus are two
//     independent N(0, C) fields. The Sobol point index is the PAIR index,
//     and one point's coordinates drive both channels: coordinate 0/1 are
//     the two trials' D2D deviates, coordinates 2+2m/3+2m the two white-
//     noise channels of leading spectral mode m. Coordinates of a single
//     scrambled point are jointly uniform, so each extracted field keeps the
//     exact field law and the estimator stays unbiased; the remaining modes
//     come from the pair's own PRNG stream. Pair toruses are batched
//     Config.Batch fields at a time through one fft.Transform2DBatchInto
//     pass, whose per-member butterflies are bitwise those of the unbatched
//     transform — so totals are bitwise invariant under both the worker
//     count and the batch size.
//
//   - Dense path (small designs): the Sobol point index is the trial index;
//     the first min(n, SobolMaxDims) field normals come from the point and
//     the rest from the trial's PRNG stream via MVNSampler.SamplePartialInto.
//
// Per-gate state and Vt draws stay pseudo-random from the trial stream in
// both bodies, exactly as in the dense/fft samplers.

// DefaultBatch is the default number of trial fields per batched FFT pass.
// Eight 32×32 toruses are ≈128 KiB of complex spectrum — comfortably cache-
// resident per worker while still amortizing the column-block twiddle walk.
const DefaultBatch = 8

// qmcSeq builds the run's Sobol sequence: dims low-discrepancy dimensions,
// scramble seed derived from (Config.Seed, netlist name) through the same
// FNV stream construction as the trial streams, and the optional
// conformance-only degrade mode.
func qmcSeq(cfg Config, name string, dims int) (*randvar.SobolSeq, error) {
	seed := stats.NewStream(cfg.Seed, "chipmc/"+name+"/qscramble#").SeedFor(0)
	if cfg.QMCDegrade != "" {
		seq, err := randvar.NewSobolDegraded(dims, seed, cfg.QMCDegrade)
		if err != nil {
			return nil, lkerr.Wrap(lkerr.InvalidInput, "chipmc.Run", err)
		}
		return seq, nil
	}
	seq, err := randvar.NewSobol(dims, seed)
	if err != nil {
		return nil, lkerr.Wrap(lkerr.InvalidInput, "chipmc.Run", err)
	}
	return seq, nil
}

// runQMCTrials fills totals with cfg.Samples qmc trials, dispatching on
// which field sampler RunContext set up.
func runQMCTrials(ctx context.Context, cfg Config, name string, runner *trialRunner,
	totals []float64, workers int, tick *parallel.Ticker, trialsC *telemetry.Counter) error {
	if runner.grid != nil {
		return runQMCGrid(ctx, cfg, name, runner, totals, workers, tick, trialsC)
	}
	return runQMCDense(ctx, cfg, name, runner, totals, workers, tick, trialsC)
}

// runQMCDense is the small-design body: per-trial Sobol deviates feed the
// leading dense-field dimensions directly.
func runQMCDense(ctx context.Context, cfg Config, name string, runner *trialRunner,
	totals []float64, workers int, tick *parallel.Ticker, trialsC *telemetry.Counter) error {
	const op = "chipmc.Run"
	n := len(runner.gates)
	qdims := n
	if qdims > randvar.SobolMaxDims {
		qdims = randvar.SobolMaxDims
	}
	seq, err := qmcSeq(cfg, name, qdims)
	if err != nil {
		return err
	}
	telemetry.SpanAttrInt(ctx, "chipmc.qmc_dims", int64(qdims))
	return parallel.ForEach(ctx, op, workers, cfg.Samples, func(w, trial int) error {
		trialsC.Inc()
		fault.Hit(fault.SiteChipMCTrial)
		b := &runner.bufs[w]
		if b.rng == nil {
			runner.warm(b)
		}
		rng := b.rng
		rng.Seed(runner.stream.SeedFor(trial))
		seq.NormalsInto(uint32(trial), b.z[:qdims])
		runner.dense.SamplePartialInto(rng, b.z, b.ls, qdims)
		total := chipTotal(runner.gates, rng, b.ls, runner.sigmaVt)
		totals[trial] = fault.Corrupt(fault.SiteChipMCTrial, total)
		tick.Tick()
		return nil
	})
}

// qmcGridBuf is one worker's private grid-path state: a batch of pair
// toruses, the FFT scratch, and the per-pair/per-trial deviate buffers. All
// of it is warmed once; the batch body is allocation-free afterwards
// (guarded by TestQMCTrialBodyAllocs).
type qmcGridBuf struct {
	rng     *rand.Rand   // per-pair spectrum stream
	trng    *rand.Rand   // per-trial state/Vt stream
	toruses []complex128 // batchPairs × TorusLen pair spectra
	scratch []complex128 // fft column scratch
	zq      []float64    // one Sobol point's normal deviates
	z0      []float64    // (z0a, z0b) per pair in the batch
	fa, fb  []float64    // the pair's two extracted fields
	ls      []float64    // per-gate channel lengths
}

// runQMCGrid is the large-design body: batched Dietrich–Newsam pair fields.
func runQMCGrid(ctx context.Context, cfg Config, name string, runner *trialRunner,
	totals []float64, workers int, tick *parallel.Ticker, trialsC *telemetry.Counter) error {
	const op = "chipmc.Run"
	gs := runner.grid
	modes := gs.TopModes((randvar.SobolMaxDims - 2) / 2)
	qdims := 2 + 2*len(modes)
	seq, err := qmcSeq(cfg, name, qdims)
	if err != nil {
		return err
	}
	batch := cfg.Batch
	if batch == 0 {
		batch = DefaultBatch
	}
	batchPairs := (batch + 1) / 2
	if batchPairs < 1 {
		batchPairs = 1
	}
	npairs := (cfg.Samples + 1) / 2
	nbatches := (npairs + batchPairs - 1) / batchPairs
	tm, tn := gs.TorusDims()
	tlen := gs.TorusLen()
	pairStream := stats.NewStream(cfg.Seed, "chipmc/"+name+"/qpair#")

	telemetry.SetGauge("chipmc_qmc_batch_size", float64(2*batchPairs))
	telemetry.SpanAttrInt(ctx, "chipmc.batch", int64(2*batchPairs))
	telemetry.SpanAttrInt(ctx, "chipmc.qmc_dims", int64(qdims))

	bufs := make([]qmcGridBuf, workers)
	return parallel.ForEach(ctx, op, workers, nbatches, func(w, bi int) error {
		b := &bufs[w]
		if b.rng == nil {
			b.rng = rand.New(rand.NewSource(1))
			b.trng = rand.New(rand.NewSource(1))
			b.toruses = make([]complex128, batchPairs*tlen)
			b.scratch = make([]complex128, fft.Scratch2DLen(tm, tn))
			b.zq = make([]float64, qdims)
			b.z0 = make([]float64, 2*batchPairs)
			b.fa = make([]float64, gs.Grid().Sites())
			b.fb = make([]float64, gs.Grid().Sites())
			b.ls = make([]float64, len(runner.gates))
		}
		p0 := bi * batchPairs
		np := batchPairs
		if p0+np > npairs {
			np = npairs - p0
		}
		// Phase 1: fill the batch's pair spectra. Everything a pair needs is
		// keyed by its global index p, so batch grouping cannot change it.
		for j := 0; j < np; j++ {
			p := p0 + j
			torus := b.toruses[j*tlen : (j+1)*tlen]
			b.rng.Seed(pairStream.SeedFor(p))
			gs.FillPairSpectrum(b.rng, torus)
			seq.NormalsInto(uint32(p), b.zq)
			b.z0[2*j], b.z0[2*j+1] = b.zq[0], b.zq[1]
			for m, k := range modes {
				gs.SetMode(torus, k, b.zq[2+2*m], b.zq[3+2*m])
			}
		}
		// Phase 2: one inverse FFT pass over the whole batch.
		if err := fft.Transform2DBatchInto(b.toruses[:np*tlen], np, tm, tn, true, b.scratch); err != nil {
			return lkerr.Wrap(lkerr.Numerical, op, err)
		}
		// Phase 3: unpack each pair into its two trials.
		for j := 0; j < np; j++ {
			p := p0 + j
			gs.ExtractPair(b.toruses[j*tlen:(j+1)*tlen], b.z0[2*j], b.z0[2*j+1], b.fa, b.fb)
			for t := 0; t < 2; t++ {
				trial := 2*p + t
				if trial >= cfg.Samples {
					break
				}
				trialsC.Inc()
				fault.Hit(fault.SiteChipMCTrial)
				f := b.fa
				if t == 1 {
					f = b.fb
				}
				for g, s := range runner.sites {
					b.ls[g] = f[s]
				}
				b.trng.Seed(runner.stream.SeedFor(trial))
				total := chipTotal(runner.gates, b.trng, b.ls, runner.sigmaVt)
				totals[trial] = fault.Corrupt(fault.SiteChipMCTrial, total)
				tick.Tick()
			}
		}
		return nil
	})
}
