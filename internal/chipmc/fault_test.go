package chipmc

import (
	"errors"
	"testing"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/randvar"
	"leakest/internal/telemetry"
)

// TestInjectedEmbeddingFailureFallsBackToDenseOnce proves the documented
// auto-mode degradation: when the FFT circulant embedding fails mid-setup,
// a design within the caller's explicit gate budget falls back to the dense
// reference sampler exactly once — incrementing
// chipmc_sampler_fallback_total — and produces the dense path's bitwise
// result instead of failing or wedging.
func TestInjectedEmbeddingFailureFallsBackToDenseOnce(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	old := autoDenseLimit
	autoDenseLimit = 8 // route this small design to the FFT path under auto
	defer func() { autoDenseLimit = old }()

	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 50, Seed: 3,
		Sampler: SamplerAuto, MaxGates: 128}

	// Dense reference, no fault: the fallback must reproduce this bitwise.
	dcfg := cfg
	dcfg.Sampler = SamplerDense
	want, err := Run(dcfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}

	r := telemetry.Enable()
	before := r.Counter("chipmc_sampler_fallback_total").Value()
	fault.Arm(fault.SiteFFTSetup, fault.Action{Kind: fault.Error})
	got, err := Run(cfg, nl, pl)
	hits := fault.Hits(fault.SiteFFTSetup)
	fault.Reset()
	if err != nil {
		t.Fatalf("auto run with injected embedding failure: %v", err)
	}
	if hits != 1 {
		t.Errorf("fft-setup site fired %d times, want exactly 1 (one setup, one fallback)", hits)
	}
	if delta := r.Counter("chipmc_sampler_fallback_total").Value() - before; delta != 1 {
		t.Errorf("chipmc_sampler_fallback_total += %d, want 1", delta)
	}
	if got.Mean != want.Mean || got.Std != want.Std || got.Q05 != want.Q05 || got.Q95 != want.Q95 {
		t.Errorf("fallback result differs from the dense reference:\n got µ=%v σ=%v [%v, %v]\nwant µ=%v σ=%v [%v, %v]",
			got.Mean, got.Std, got.Q05, got.Q95, want.Mean, want.Std, want.Q05, want.Q95)
	}
}

// TestInjectedEmbeddingFailureForcedFFTIsTyped: with the FFT sampler forced
// (no fallback admissible), an injected embedding failure surfaces as a
// typed Numerical error, never a crash or a silent wrong result.
func TestInjectedEmbeddingFailureForcedFFTIsTyped(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	defer fault.Reset()
	fault.Arm(fault.SiteFFTSetup, fault.Action{Kind: fault.Error})
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 50, Seed: 3,
		Sampler: SamplerFFT}
	_, err := Run(cfg, nl, pl)
	if !errors.Is(err, lkerr.ErrNumerical) {
		t.Fatalf("forced FFT with injected failure: got %v, want a typed Numerical error", err)
	}
}

// TestPrebuiltSamplerIsReused: a cached grid sampler whose grid matches the
// placement is used in place of a fresh embedding and reproduces the
// freshly-built FFT result bitwise; a mismatched grid is ignored.
func TestPrebuiltSamplerIsReused(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 50, Seed: 3,
		Sampler: SamplerFFT}
	fresh, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := randvar.NewGridSampler(proc, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Prebuilt = gs
	got, err := Run(pcfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != fresh.Mean || got.Std != fresh.Std || got.Q05 != fresh.Q05 || got.Q95 != fresh.Q95 {
		t.Errorf("prebuilt-sampler run differs from fresh embedding: got %+v, want %+v", got, fresh)
	}
}
