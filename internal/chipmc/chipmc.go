// Package chipmc is an independent full-chip Monte-Carlo ground truth for
// the analytic estimators: it samples the spatially correlated channel-
// length field at every placed gate (D2D shift plus a within-die Gaussian
// field with the process correlation), samples each gate's input state from
// the signal probability, evaluates each gate's leakage from its tabulated
// characterization curve, and accumulates the total-chip leakage
// distribution. It validates the O(n²) "true leakage" analytics beyond the
// paper's own validation and powers the Vt-ablation experiment.
package chipmc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"leakest/internal/charlib"
	"leakest/internal/fault"
	"leakest/internal/linalg"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// DefaultMaxGates is the default bound on the dense-Cholesky field
// construction; beyond this the O(n³) factorization is impractical and the
// analytic estimators are the intended tool. Override with Config.MaxGates.
const DefaultMaxGates = 4000

// Config controls a full-chip Monte-Carlo run.
type Config struct {
	// Lib is the characterized library (curves are evaluated, not fits).
	Lib *charlib.Library
	// Proc supplies the variation model; its (µ, σ) must match Lib's.
	Proc *spatial.Process
	// SignalProb drives per-gate input-state sampling.
	SignalProb float64
	// Samples is the number of chip-level trials (default 2000).
	Samples int
	// Seed fixes the random stream.
	Seed int64
	// IncludeVt adds an independent per-gate lognormal factor modelling
	// random Vt fluctuation, exp(−ΔVt/(n·vT)) with ΔVt ~ N(0, σ_Vt²). This
	// slightly overstates the Vt variance contribution (devices within a
	// gate are lumped into one factor), which is conservative for the
	// ablation that shows the contribution is negligible.
	IncludeVt bool
	// MaxGates bounds the gate count the dense field sampler will accept
	// (default DefaultMaxGates). Exceeding it is a typed BudgetExceeded
	// error, not a crash: the analytic estimators handle larger designs.
	MaxGates int
	// Workers is the goroutine count sampling trials: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Results are bitwise
	// identical at any setting — every trial draws from its own PRNG stream
	// derived from (Seed, trial index), and the moment reduction runs over
	// the stored per-trial totals in trial order.
	Workers int
	// KeepTrials retains the per-trial chip totals in Result.Trials — the
	// raw MC stream, used by the determinism suite and by distribution
	// diagnostics. Off by default (costs 8 bytes per trial when on).
	KeepTrials bool
}

// Result is the sampled full-chip leakage distribution summary.
type Result struct {
	Mean, Std float64
	// Q05 and Q95 are the 5th and 95th percentile of total leakage.
	Q05, Q95 float64
	Samples  int
	// Trials holds the per-trial chip totals in trial order when
	// Config.KeepTrials is set; nil otherwise.
	Trials []float64
}

// MeanSE returns the standard error of the sampled mean, the natural
// tolerance unit when comparing the MC mean against an analytic estimator.
func (r Result) MeanSE() float64 { return stats.MeanSE(r.Std, r.Samples) }

// StdSE returns the normal-theory standard error of the sampled standard
// deviation. The per-trial totals are lognormal-ish, so the true error is
// somewhat larger; callers widen the z multiplier to absorb that.
func (r Result) StdSE() float64 { return stats.StdSE(r.Std, r.Samples) }

// gateState holds the per-gate sampling tables.
type gateState struct {
	states []*charlib.StateChar
	cum    []float64
}

// Run executes the Monte Carlo for the placed netlist.
func Run(cfg Config, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	return RunContext(context.Background(), cfg, nl, pl)
}

// RunContext is Run with cancellation: ctx is checked once per row while
// assembling the n×n field covariance and once per chip-level trial, so a
// cancel stops the run within one check interval.
func RunContext(ctx context.Context, cfg Config, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	const op = "chipmc.Run"
	n := len(nl.Gates)
	if n == 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "empty netlist")
	}
	maxGates := cfg.MaxGates
	if maxGates == 0 {
		maxGates = DefaultMaxGates
	}
	if n > maxGates {
		return Result{}, lkerr.New(lkerr.BudgetExceeded, op,
			"%d gates exceed the dense-field limit MaxGates=%d (O(n³) factorization); "+
				"use the analytic estimators (Estimate / TrueLeakage) for designs this large",
			n, maxGates)
	}
	if len(pl.Site) != n {
		return Result{}, lkerr.New(lkerr.InvalidInput, op,
			"placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if cfg.Lib == nil || cfg.Proc == nil {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "Lib and Proc are required")
	}
	if err := cfg.Proc.Validate(); err != nil {
		return Result{}, lkerr.Wrap(lkerr.InvalidInput, op, err)
	}
	if math.Abs(cfg.Proc.LNominal-cfg.Lib.Process.LNominal) > 1e-12 ||
		math.Abs(cfg.Proc.TotalSigma()-cfg.Lib.Process.TotalSigma()) > 1e-12 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "process inconsistent with characterization")
	}
	if !(cfg.SignalProb >= 0 && cfg.SignalProb <= 1) {
		return Result{}, lkerr.New(lkerr.InvalidInput, op,
			"signal probability %g outside [0,1]", cfg.SignalProb)
	}
	if cfg.Samples == 0 {
		cfg.Samples = 2000
	}
	if cfg.Samples < 10 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "%d samples too few", cfg.Samples)
	}

	// Per-gate state tables.
	gates := make([]gateState, n)
	for g, gate := range nl.Gates {
		cc, err := cfg.Lib.Cell(gate.Type)
		if err != nil {
			return Result{}, lkerr.Wrap(lkerr.InvalidInput, op, err)
		}
		gs := gateState{}
		cumP := 0.0
		for i := range cc.States {
			p := cc.StateProb(cc.States[i].State, cfg.SignalProb)
			if p == 0 {
				continue
			}
			cumP += p
			gs.states = append(gs.states, &cc.States[i])
			gs.cum = append(gs.cum, cumP)
		}
		if len(gs.states) == 0 {
			return Result{}, lkerr.New(lkerr.InvalidInput, op,
				"gate %d (%s) has no reachable states", g, gate.Type)
		}
		gs.cum[len(gs.cum)-1] = 1
		gates[g] = gs
	}

	// Channel-length covariance over gate positions:
	// Σ_ab = σ_d2d² + σ_wid²·ρ_wid(d_ab), with the total variance on the
	// diagonal.
	vd := cfg.Proc.SigmaD2D * cfg.Proc.SigmaD2D
	vw := cfg.Proc.SigmaWID * cfg.Proc.SigmaWID
	endAssemble := telemetry.StartSpan(ctx, "chipmc.assemble")
	cov := linalg.NewMatrix(n, n)
	for a := 0; a < n; a++ {
		if err := lkerr.FromContext(ctx, op); err != nil {
			return Result{}, err
		}
		cov.Set(a, a, vd+vw)
		for b := a + 1; b < n; b++ {
			rho := 0.0
			if vw > 0 {
				rho = cfg.Proc.WIDCorr.Rho(pl.Dist(a, b))
			}
			c := vd + vw*rho
			cov.Set(a, b, c)
			cov.Set(b, a, c)
		}
	}
	endAssemble()
	mean := make([]float64, n)
	for i := range mean {
		mean[i] = cfg.Proc.LNominal
	}
	endChol := telemetry.StartSpan(ctx, "chipmc.cholesky")
	sampler, err := randvar.NewMVNSampler(mean, cov)
	endChol()
	if err != nil {
		// Factorization failures (non-PD covariance, NaN factor) are
		// numerical; the classification survives if already typed.
		return Result{}, lkerr.Wrap(lkerr.Numerical, op, err)
	}

	// Trial fan-out. Each trial draws from its own PRNG stream keyed by
	// (Seed, trial index), so the sampled fields — and therefore every
	// moment below — are bitwise identical at any worker count. Workers
	// only race on disjoint totals[trial] slots and on their private
	// ls/z scratch; the Welford reduction runs serially afterwards in
	// trial order.
	const nvt = 1.4 * 0.0259 // n·vT of the default 90 nm card
	workers := parallel.Resolve(cfg.Workers, cfg.Samples)
	lsBuf := make([][]float64, workers)
	zBuf := make([][]float64, workers)
	totals := make([]float64, cfg.Samples)
	endTrials := telemetry.StartSpan(ctx, "chipmc.trials")
	rep := telemetry.StartProgress(ctx, "chipmc.trials", int64(cfg.Samples))
	tick := parallel.NewTicker(rep)
	var trialsC *telemetry.Counter
	if r := telemetry.Default(); r != nil {
		trialsC = r.Counter("chipmc_trials_total")
	}
	err = parallel.ForEach(ctx, op, workers, cfg.Samples, func(w, trial int) error {
		trialsC.Inc()
		fault.Hit(fault.SiteChipMCTrial)
		if lsBuf[w] == nil {
			lsBuf[w] = make([]float64, n)
			zBuf[w] = make([]float64, n)
		}
		ls := lsBuf[w]
		rng := stats.NewRNG(cfg.Seed, fmt.Sprintf("chipmc/%s/trial#%d", nl.Name, trial))
		sampler.SampleInto(rng, zBuf[w], ls)
		total := 0.0
		for g := 0; g < n; g++ {
			gs := &gates[g]
			st := gs.states[0]
			if len(gs.states) > 1 {
				u := rng.Float64()
				idx := sort.SearchFloat64s(gs.cum, u)
				if idx >= len(gs.states) {
					idx = len(gs.states) - 1
				}
				st = gs.states[idx]
			}
			x := st.Leakage(ls[g])
			if cfg.IncludeVt && cfg.Proc.SigmaVt > 0 {
				x *= math.Exp(-rng.NormFloat64() * cfg.Proc.SigmaVt / nvt)
			}
			total += x
		}
		totals[trial] = fault.Corrupt(fault.SiteChipMCTrial, total)
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		endTrials()
		return Result{}, err
	}
	var run stats.Running
	for _, total := range totals {
		run.Push(total)
	}
	rep.Done(int64(cfg.Samples))
	endTrials()
	res := Result{
		Mean:    run.Mean(),
		Std:     run.StdDev(),
		Q05:     stats.Quantile(totals, 0.05),
		Q95:     stats.Quantile(totals, 0.95),
		Samples: cfg.Samples,
	}
	if cfg.KeepTrials {
		res.Trials = append([]float64(nil), totals...)
	}
	// Final-moment guard: a NaN produced by any trial must surface as a
	// typed error, never as a silent NaN result.
	if err := lkerr.CheckFinite(op, "mean", res.Mean); err != nil {
		return Result{}, err
	}
	if err := lkerr.CheckFinite(op, "std", res.Std); err != nil {
		return Result{}, err
	}
	return res, nil
}
