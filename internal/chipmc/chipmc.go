// Package chipmc is an independent full-chip Monte-Carlo ground truth for
// the analytic estimators: it samples the spatially correlated channel-
// length field at every placed gate (D2D shift plus a within-die Gaussian
// field with the process correlation), samples each gate's input state from
// the signal probability, evaluates each gate's leakage from its tabulated
// characterization curve, and accumulates the total-chip leakage
// distribution. It validates the O(n²) "true leakage" analytics beyond the
// paper's own validation and powers the Vt-ablation experiment.
//
// Two field samplers are available. The dense path factorizes the full n×n
// covariance (O(n³) setup, O(n²) per trial) and is the historical,
// bitwise-frozen reference. The FFT path exploits the regular placement
// grid: the stationary WID kernel is circulant-embedded on a torus
// (randvar.GridSampler), so setup is one 2-D FFT and each trial costs
// O(S log S) in the torus size S — raising the practical gate budget from
// thousands to hundreds of thousands while sampling the same covariance at
// every grid lag (exactly when the embedding torus affords the kernel's
// support, within a hard-capped clamp bias otherwise; see
// randvar.GridSampler).
package chipmc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"leakest/internal/charlib"
	"leakest/internal/fault"
	"leakest/internal/linalg"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// DefaultMaxGates is the default bound on the dense-Cholesky field
// construction; beyond this the O(n³) factorization is impractical and the
// FFT sampler (or the analytic estimators) is the intended tool. Override
// with Config.MaxGates.
const DefaultMaxGates = 4000

// DefaultMaxGatesFFT is the default gate bound for the FFT sampler, whose
// per-trial cost grows as S log S in the torus size rather than n². The
// limit keeps worst-case torus scratch (16 bytes/point per worker) and trial
// time predictable. Override with Config.MaxGates.
const DefaultMaxGatesFFT = 200000

// autoDenseLimit is the gate count up to which SamplerAuto routes to the
// dense reference path; a variable (not const) only so the fault-injection
// tests can exercise the FFT→dense fallback on small, fast designs.
var autoDenseLimit = DefaultMaxGates

// Sampler selects how the correlated channel-length field is drawn.
type Sampler int

const (
	// SamplerAuto picks SamplerDense for designs within DefaultMaxGates and
	// SamplerFFT beyond, falling back to dense if the grid embedding fails
	// on a small design.
	SamplerAuto Sampler = iota
	// SamplerDense forces the dense-Cholesky field (the historical
	// reference path; bitwise-frozen results).
	SamplerDense
	// SamplerFFT forces the circulant-embedding grid sampler.
	SamplerFFT
	// SamplerQMC draws trials from a scrambled-Sobol low-discrepancy
	// sequence instead of pseudo-random deviates, batching trial fields in
	// Dietrich–Newsam pairs through one 2-D FFT pass on large designs and
	// feeding the dense-Cholesky field directly on small ones. Same
	// estimand and unbiasedness as the other samplers, materially fewer
	// trials to a given standard error on smooth integrands; results are
	// NOT bitwise comparable to dense/fft (different deviate stream), but
	// are themselves bitwise reproducible at any worker count or batch
	// size. See qmc.go.
	SamplerQMC
)

// String implements fmt.Stringer with the CLI spellings.
func (s Sampler) String() string {
	switch s {
	case SamplerAuto:
		return "auto"
	case SamplerDense:
		return "dense"
	case SamplerFFT:
		return "fft"
	case SamplerQMC:
		return "qmc"
	}
	return "invalid"
}

// ParseSampler maps the CLI spellings onto Sampler values.
func ParseSampler(name string) (Sampler, error) {
	switch name {
	case "auto":
		return SamplerAuto, nil
	case "dense":
		return SamplerDense, nil
	case "fft":
		return SamplerFFT, nil
	case "qmc":
		return SamplerQMC, nil
	}
	return 0, lkerr.New(lkerr.InvalidInput, "chipmc.ParseSampler",
		"unknown sampler %q (want auto, dense, fft, or qmc)", name)
}

// Config controls a full-chip Monte-Carlo run.
type Config struct {
	// Lib is the characterized library (curves are evaluated, not fits).
	Lib *charlib.Library
	// Proc supplies the variation model; its (µ, σ) must match Lib's.
	Proc *spatial.Process
	// SignalProb drives per-gate input-state sampling.
	SignalProb float64
	// Samples is the number of chip-level trials (default 2000).
	Samples int
	// Seed fixes the random stream.
	Seed int64
	// IncludeVt adds an independent per-gate lognormal factor modelling
	// random Vt fluctuation, exp(−ΔVt/(n·vT)) with ΔVt ~ N(0, σ_Vt²). This
	// slightly overstates the Vt variance contribution (devices within a
	// gate are lumped into one factor), which is conservative for the
	// ablation that shows the contribution is negligible.
	IncludeVt bool
	// Sampler selects the field construction (default SamplerAuto).
	Sampler Sampler
	// Batch is the number of trial fields the qmc sampler pushes through
	// one batched 2-D FFT pass (default DefaultBatch; rounded up to a whole
	// number of Dietrich–Newsam pairs). Ignored by the other samplers.
	// Results are bitwise independent of the batch size.
	Batch int
	// QMCDegrade deliberately weakens the qmc deviate stream
	// ("unscrambled" or "pseudo"; see randvar.NewSobolDegraded). It exists
	// solely so the conformance suite can prove its convergence gates
	// would catch a broken sequence; leave empty in production.
	QMCDegrade string
	// MaxGates bounds the gate count the selected sampler will accept
	// (default DefaultMaxGates for the dense path, DefaultMaxGatesFFT
	// otherwise). Exceeding it is a typed BudgetExceeded error, not a
	// crash: the analytic estimators handle larger designs.
	MaxGates int
	// Workers is the goroutine count sampling trials: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Results are bitwise
	// identical at any setting — every trial draws from its own PRNG stream
	// derived from (Seed, trial index), and the moment reduction runs over
	// the stored per-trial totals in trial order.
	Workers int
	// Prebuilt is an optional pre-constructed FFT grid sampler (the
	// expensive torus embedding, cacheable across runs keyed by
	// (kernel, grid)). It is used only when the FFT path is selected and
	// its grid matches the placement grid exactly; otherwise the embedding
	// is built fresh. The sampler must have been built for the same
	// process (the embedding depends only on the WID kernel and the grid).
	Prebuilt *randvar.GridSampler
	// Tiles partitions the placement grid into a Tiles×Tiles arrangement
	// and samples the within-die field per tile (WID-only sub-grid
	// embeddings sharing one chip-wide D2D deviate per trial) instead of on
	// one monolithic torus, so field memory scales with the largest tile
	// rather than the die (DESIGN.md §16). Values ≤ 1 select the monolithic
	// samplers (the historical behavior). Tiled sampling drops the
	// within-die correlation of cross-tile gate pairs to the D2D floor — an
	// approximation the conformance harness gates against an exact
	// reference — and requires the fft or auto sampler.
	Tiles int
	// KeepTrials retains the per-trial chip totals in Result.Trials — the
	// raw MC stream, used by the determinism suite and by distribution
	// diagnostics. Off by default (costs 8 bytes per trial when on).
	KeepTrials bool
	// Tail enables distribution-tail estimation — quantiles, exceedance at
	// a spec, and the importance-sampled deep-tail estimator — populating
	// Result.Tail. Nil disables the stage (the historical behavior).
	Tail *TailConfig
}

// Result is the sampled full-chip leakage distribution summary.
type Result struct {
	Mean, Std float64
	// Q05 and Q95 are the 5th and 95th percentile of total leakage.
	Q05, Q95 float64
	Samples  int
	// Trials holds the per-trial chip totals in trial order when
	// Config.KeepTrials is set; nil otherwise.
	Trials []float64
	// Tail holds the distribution-tail summary when Config.Tail is set;
	// nil otherwise.
	Tail *TailStats
}

// MeanSE returns the standard error of the sampled mean, the natural
// tolerance unit when comparing the MC mean against an analytic estimator.
func (r Result) MeanSE() float64 { return stats.MeanSE(r.Std, r.Samples) }

// StdSE returns the normal-theory standard error of the sampled standard
// deviation. The per-trial totals are lognormal-ish, so the true error is
// somewhat larger; callers widen the z multiplier to absorb that.
func (r Result) StdSE() float64 { return stats.StdSE(r.Std, r.Samples) }

// gateState holds the per-gate sampling tables.
type gateState struct {
	states []*charlib.StateChar
	cum    []float64
}

// nvt is n·vT of the default 90 nm card, the subthreshold slope factor of
// the Vt-fluctuation leakage multiplier.
const nvt = 1.4 * 0.0259

// trialBuf is one worker's private trial state: a reusable PRNG (reseeded
// per trial from the run's Stream, which reproduces the historical
// per-trial streams bitwise with zero allocations) plus the sampling
// scratch of whichever field path is active.
type trialBuf struct {
	rng   *rand.Rand
	ls    []float64 // per-gate channel lengths
	z     []float64 // dense-path standard-normal scratch
	field []float64 // FFT-path per-site field
	sc    *randvar.GridScratch
}

// trialRunner holds everything a chip-level trial needs, set up once per
// run: gate state tables, the field sampler (exactly one of dense/grid is
// non-nil), the frozen RNG stream prefix, and per-worker buffers.
type trialRunner struct {
	gates  []gateState
	sites  []int
	stream stats.Stream
	dense  *randvar.MVNSampler
	grid   *randvar.GridSampler
	// sigmaVt is the Vt-fluctuation sigma when the ablation is enabled, 0
	// otherwise.
	sigmaVt float64
	bufs    []trialBuf
}

// warm allocates a worker's buffers on its first trial; everything after is
// allocation-free (guarded by TestTrialBodyAllocs).
func (r *trialRunner) warm(b *trialBuf) {
	n := len(r.gates)
	b.rng = rand.New(rand.NewSource(1))
	b.ls = make([]float64, n)
	if r.dense != nil {
		b.z = make([]float64, n)
	} else {
		b.field = make([]float64, r.grid.Sites())
		b.sc = r.grid.NewScratch()
	}
}

// runTrial executes one chip-level trial on worker w and returns the chip
// total. The draw order — field normals first, then per-gate state and Vt
// draws — is part of the determinism contract and matches the historical
// implementation exactly on the dense path.
func (r *trialRunner) runTrial(w, trial int) (float64, error) {
	b := &r.bufs[w]
	if b.rng == nil {
		r.warm(b)
	}
	rng := b.rng
	rng.Seed(r.stream.SeedFor(trial))
	ls := b.ls
	if r.dense != nil {
		r.dense.SampleInto(rng, b.z, ls)
	} else {
		if err := r.grid.SampleInto(rng, b.sc, b.field); err != nil {
			return 0, err
		}
		for g, s := range r.sites {
			ls[g] = b.field[s]
		}
	}
	return chipTotal(r.gates, rng, ls, r.sigmaVt), nil
}

// chipTotal evaluates the chip leakage of one sampled channel-length vector:
// per-gate input state by inverse-CDF draw, leakage from the characterized
// curve, optional Vt-fluctuation factor. Shared by the primary trial body
// and the importance-sampled tail trials; the per-gate draw order is part of
// the bitwise determinism contract of both.
func chipTotal(gates []gateState, rng *rand.Rand, ls []float64, sigmaVt float64) float64 {
	total := 0.0
	for g := range gates {
		gs := &gates[g]
		st := gs.states[0]
		if len(gs.states) > 1 {
			u := rng.Float64()
			idx := sort.SearchFloat64s(gs.cum, u)
			if idx >= len(gs.states) {
				idx = len(gs.states) - 1
			}
			st = gs.states[idx]
		}
		x := st.Leakage(ls[g])
		if sigmaVt > 0 {
			x *= math.Exp(-rng.NormFloat64() * sigmaVt / nvt)
		}
		total += x
	}
	return total
}

// Run executes the Monte Carlo for the placed netlist.
func Run(cfg Config, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	return RunContext(context.Background(), cfg, nl, pl)
}

// resolveSampler picks the effective sampler and gate budget: explicit
// sampler choices use their own default budget, auto routes small designs
// to the frozen dense path and large ones to the FFT path, and an explicit
// Config.MaxGates overrides the budget in every mode.
func resolveSampler(cfg Config, n int) (use Sampler, maxGates int, err error) {
	switch cfg.Sampler {
	case SamplerAuto, SamplerDense, SamplerFFT, SamplerQMC:
	default:
		return 0, 0, lkerr.New(lkerr.InvalidInput, "chipmc.Run",
			"invalid Sampler %d", int(cfg.Sampler))
	}
	use = cfg.Sampler
	if use == SamplerAuto {
		if n <= autoDenseLimit {
			use = SamplerDense
		} else {
			use = SamplerFFT
		}
	}
	maxGates = cfg.MaxGates
	if maxGates == 0 {
		if cfg.Sampler == SamplerDense {
			maxGates = DefaultMaxGates
		} else {
			maxGates = DefaultMaxGatesFFT
		}
	}
	return use, maxGates, nil
}

// timeRun observes estimate_duration_seconds{method="chipmc",sampler=...}
// when metrics are enabled, mirroring the analytic estimators' timings so
// dashboards can compare methods and samplers directly.
func timeRun(sampler Sampler) func() {
	if !telemetry.MetricsOn() {
		return func() {}
	}
	start := time.Now()
	name := telemetry.Label(
		telemetry.Label("estimate_duration_seconds", "method", "chipmc"),
		"sampler", sampler.String())
	return func() { telemetry.ObserveSeconds(name, time.Since(start).Seconds()) }
}

// RunContext is Run with cancellation: ctx is checked once per row while
// assembling the dense field covariance and once per chip-level trial, so a
// cancel stops the run within one check interval.
func RunContext(ctx context.Context, cfg Config, nl *netlist.Netlist, pl *placement.Placement) (Result, error) {
	const op = "chipmc.Run"
	n := len(nl.Gates)
	if n == 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "empty netlist")
	}
	ctx, endRun := telemetry.WithSpan(ctx, "chipmc.run")
	defer endRun()
	use, maxGates, err := resolveSampler(cfg, n)
	if err != nil {
		return Result{}, err
	}
	if cfg.Tiles < 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "negative Tiles %d", cfg.Tiles)
	}
	if cfg.Tiles > 1 {
		if cfg.Sampler == SamplerDense || cfg.Sampler == SamplerQMC {
			return Result{}, lkerr.New(lkerr.InvalidInput, op,
				"tiled sampling (Tiles=%d) requires the fft or auto sampler, got %s",
				cfg.Tiles, cfg.Sampler)
		}
		if cfg.Tail != nil {
			return Result{}, lkerr.New(lkerr.InvalidInput, op,
				"tiled sampling does not support tail estimation; run with Tiles=0")
		}
		use = SamplerFFT
		if cfg.MaxGates == 0 {
			maxGates = DefaultMaxGatesTiled
		}
	}
	if n > maxGates {
		return Result{}, lkerr.New(lkerr.BudgetExceeded, op,
			"%d gates exceed the %s-sampler limit MaxGates=%d; "+
				"use the analytic estimators (Estimate / TrueLeakage) for designs this large",
			n, use, maxGates)
	}
	if len(pl.Site) != n {
		return Result{}, lkerr.New(lkerr.InvalidInput, op,
			"placement covers %d gates, netlist has %d", len(pl.Site), n)
	}
	if cfg.Lib == nil || cfg.Proc == nil {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "Lib and Proc are required")
	}
	if err := cfg.Proc.Validate(); err != nil {
		return Result{}, lkerr.Wrap(lkerr.InvalidInput, op, err)
	}
	if math.Abs(cfg.Proc.LNominal-cfg.Lib.Process.LNominal) > 1e-12 ||
		math.Abs(cfg.Proc.TotalSigma()-cfg.Lib.Process.TotalSigma()) > 1e-12 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "process inconsistent with characterization")
	}
	if !(cfg.SignalProb >= 0 && cfg.SignalProb <= 1) {
		return Result{}, lkerr.New(lkerr.InvalidInput, op,
			"signal probability %g outside [0,1]", cfg.SignalProb)
	}
	if cfg.Samples == 0 {
		cfg.Samples = 2000
	}
	if cfg.Samples < 10 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "%d samples too few", cfg.Samples)
	}
	if cfg.Batch < 0 {
		return Result{}, lkerr.New(lkerr.InvalidInput, op, "negative Batch %d", cfg.Batch)
	}
	var tailQs []float64
	if cfg.Tail != nil {
		tailQs, err = cfg.Tail.validate(op)
		if err != nil {
			return Result{}, err
		}
	}

	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		return Result{}, err
	}

	if cfg.Tiles > 1 {
		return runTiledContext(ctx, cfg, nl, pl, gates)
	}

	runner := &trialRunner{gates: gates, stream: stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/trial#")}
	if cfg.IncludeVt {
		runner.sigmaVt = cfg.Proc.SigmaVt
	}
	// The qmc sampler rides the grid path on large designs (batched pair
	// fields) and the dense path on small ones (direct low-discrepancy
	// deviates), mirroring the auto threshold.
	wantGrid := use == SamplerFFT || (use == SamplerQMC && n > autoDenseLimit)
	if wantGrid {
		endSetup := telemetry.StartSpan(ctx, "chipmc.fft_setup")
		var gs *randvar.GridSampler
		var gerr error
		if cfg.Prebuilt != nil && cfg.Prebuilt.Grid() == pl.Grid {
			gs = cfg.Prebuilt
			telemetry.SpanAttrBool(ctx, "chipmc.prebuilt_embedding", true)
		} else {
			gs, gerr = randvar.NewGridSamplerContext(ctx, cfg.Proc, pl.Grid)
		}
		if gerr == nil {
			if ferr := fault.Failure(fault.SiteFFTSetup); ferr != nil {
				gs, gerr = nil, ferr
			}
		}
		endSetup()
		switch {
		case gerr == nil:
			runner.grid = gs
			runner.sites = pl.Site
			// Numerical-health facts of the embedding: how much eigenvalue
			// clamping the torus absorbed and how large it had to grow.
			tm, tn := gs.TorusDims()
			telemetry.SpanAttrStr(ctx, "chipmc.torus", fmt.Sprintf("%dx%d", tm, tn))
			telemetry.SpanAttrFloat(ctx, "chipmc.clamp_bias", gs.ClampBias())
		case cfg.Sampler == SamplerAuto && cfg.MaxGates != 0 && n <= cfg.MaxGates:
			// The embedding failed, but the caller's explicit gate budget
			// admits the dense path: degrade gracefully and record it.
			telemetry.Add("chipmc_sampler_fallback_total", 1)
			telemetry.SpanAttrBool(ctx, "chipmc.fallback", true)
			use = SamplerDense
		case use == SamplerQMC && cfg.MaxGates != 0 && n <= cfg.MaxGates:
			// Same graceful degradation for qmc: the explicit budget admits
			// the dense field, and the low-discrepancy stream carries over
			// (runner.grid stays nil, selecting the dense-qmc trial body).
			telemetry.Add("chipmc_sampler_fallback_total", 1)
			telemetry.SpanAttrBool(ctx, "chipmc.fallback", true)
		default:
			return Result{}, lkerr.Wrap(lkerr.Numerical, op, gerr)
		}
	}
	if use == SamplerDense || (use == SamplerQMC && runner.grid == nil) {
		dense, derr := newDenseSampler(ctx, cfg, n, pl)
		if derr != nil {
			return Result{}, derr
		}
		runner.dense = dense
	}
	defer timeRun(use)()

	// Trial fan-out. Each trial draws from its own PRNG stream keyed by
	// (Seed, trial index), so the sampled fields — and therefore every
	// moment below — are bitwise identical at any worker count. Workers
	// only race on disjoint totals[trial] slots and on their private
	// trialBuf scratch; the Welford reduction runs serially afterwards in
	// trial order.
	workers := parallel.Resolve(cfg.Workers, cfg.Samples)
	runner.bufs = make([]trialBuf, workers)
	totals := make([]float64, cfg.Samples)
	telemetry.Inc(telemetry.Label("chipmc_sampler_runs_total", "sampler", use.String()))
	telemetry.SpanAttrStr(ctx, "chipmc.sampler", use.String())
	telemetry.SpanAttrInt(ctx, "chipmc.trials", int64(cfg.Samples))
	telemetry.SpanAttrInt(ctx, "chipmc.workers", int64(workers))
	endTrials := telemetry.StartSpan(ctx, "chipmc.trials")
	rep := telemetry.StartProgress(ctx, "chipmc.trials", int64(cfg.Samples))
	tick := parallel.NewTicker(rep)
	var trialsC *telemetry.Counter
	if r := telemetry.Default(); r != nil {
		trialsC = r.Counter("chipmc_trials_total")
	}
	if use == SamplerQMC {
		err = runQMCTrials(ctx, cfg, nl.Name, runner, totals, workers, tick, trialsC)
	} else {
		err = parallel.ForEach(ctx, op, workers, cfg.Samples, func(w, trial int) error {
			trialsC.Inc()
			fault.Hit(fault.SiteChipMCTrial)
			total, terr := runner.runTrial(w, trial)
			if terr != nil {
				return lkerr.Wrap(lkerr.Numerical, op, terr)
			}
			totals[trial] = fault.Corrupt(fault.SiteChipMCTrial, total)
			tick.Tick()
			return nil
		})
	}
	if err != nil {
		rep.Done(tick.Count())
		endTrials()
		return Result{}, err
	}
	var run stats.Running
	for _, total := range totals {
		run.Push(total)
	}
	rep.Done(int64(cfg.Samples))
	endTrials()
	res := Result{
		Mean:    run.Mean(),
		Std:     run.StdDev(),
		Q05:     stats.Quantile(totals, 0.05),
		Q95:     stats.Quantile(totals, 0.95),
		Samples: cfg.Samples,
	}
	if cfg.KeepTrials {
		res.Trials = append([]float64(nil), totals...)
	}
	// Final-moment guard: a NaN produced by any trial must surface as a
	// typed error, never as a silent NaN result.
	if err := lkerr.CheckFinite(op, "mean", res.Mean); err != nil {
		return Result{}, err
	}
	if err := lkerr.CheckFinite(op, "std", res.Std); err != nil {
		return Result{}, err
	}
	if cfg.Tail != nil {
		tail, terr := runTail(ctx, cfg, tailQs, nl.Name, pl, runner, totals, res, workers)
		if terr != nil {
			return Result{}, terr
		}
		res.Tail = tail
	}
	return res, nil
}

// buildGateStates precomputes each gate's reachable states and cumulative
// state probabilities for inverse-CDF sampling.
func buildGateStates(cfg Config, nl *netlist.Netlist) ([]gateState, error) {
	const op = "chipmc.Run"
	gates := make([]gateState, len(nl.Gates))
	for g, gate := range nl.Gates {
		cc, err := cfg.Lib.Cell(gate.Type)
		if err != nil {
			return nil, lkerr.Wrap(lkerr.InvalidInput, op, err)
		}
		gs := gateState{}
		cumP := 0.0
		for i := range cc.States {
			p := cc.StateProb(cc.States[i].State, cfg.SignalProb)
			if p == 0 {
				continue
			}
			cumP += p
			gs.states = append(gs.states, &cc.States[i])
			gs.cum = append(gs.cum, cumP)
		}
		if len(gs.states) == 0 {
			return nil, lkerr.New(lkerr.InvalidInput, op,
				"gate %d (%s) has no reachable states", g, gate.Type)
		}
		gs.cum[len(gs.cum)-1] = 1
		gates[g] = gs
	}
	return gates, nil
}

// newDenseSampler assembles the n×n channel-length covariance over gate
// positions — Σ_ab = σ_d2d² + σ_wid²·ρ_wid(d_ab), total variance on the
// diagonal — and factorizes it.
func newDenseSampler(ctx context.Context, cfg Config, n int, pl *placement.Placement) (*randvar.MVNSampler, error) {
	const op = "chipmc.Run"
	vd := cfg.Proc.SigmaD2D * cfg.Proc.SigmaD2D
	vw := cfg.Proc.SigmaWID * cfg.Proc.SigmaWID
	endAssemble := telemetry.StartSpan(ctx, "chipmc.assemble")
	cov := linalg.NewMatrix(n, n)
	for a := 0; a < n; a++ {
		if err := lkerr.FromContext(ctx, op); err != nil {
			return nil, err
		}
		cov.Set(a, a, vd+vw)
		for b := a + 1; b < n; b++ {
			rho := 0.0
			if vw > 0 {
				rho = cfg.Proc.WIDCorr.Rho(pl.Dist(a, b))
			}
			c := vd + vw*rho
			cov.Set(a, b, c)
			cov.Set(b, a, c)
		}
	}
	endAssemble()
	mean := make([]float64, n)
	for i := range mean {
		mean[i] = cfg.Proc.LNominal
	}
	endChol := telemetry.StartSpan(ctx, "chipmc.cholesky")
	sampler, err := randvar.NewMVNSampler(mean, cov)
	endChol()
	if err != nil {
		// Factorization failures (non-PD covariance, NaN factor) are
		// numerical; the classification survives if already typed.
		return nil, lkerr.Wrap(lkerr.Numerical, op, err)
	}
	return sampler, nil
}
