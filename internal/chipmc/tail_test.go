package chipmc

import (
	"context"
	"math"
	"strings"
	"testing"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func baseTailConfig(spec float64, isTrials int) *TailConfig {
	return &TailConfig{
		Spec:      spec,
		Quantiles: []float64{0.5, 0.95, 0.99},
		ISTrials:  isTrials,
	}
}

// TestTailQuantilesMatchTotals pins that the reported quantiles are exactly
// the stats.Quantiles of the retained trial stream — the per-trial
// reservoir is the ground truth the estimator composes from.
func TestTailQuantilesMatchTotals(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	qs := []float64{0.5, 0.95, 0.99, 0.999}
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 400, Seed: 5,
		KeepTrials: true, Tail: &TailConfig{Quantiles: []float64{0.99, 0.5, 0.999, 0.95, 0.5}}}
	res, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail == nil {
		t.Fatal("Tail config set but Result.Tail is nil")
	}
	want := stats.Quantiles(res.Trials, qs)
	if len(res.Tail.Quantiles) != len(qs) {
		t.Fatalf("got %d quantile points, want %d (sorted, deduped)", len(res.Tail.Quantiles), len(qs))
	}
	for i, qp := range res.Tail.Quantiles {
		if qp.P != qs[i] || qp.Value != want[i] {
			t.Errorf("quantile %d = {%g, %v}, want {%g, %v}", i, qp.P, qp.Value, qs[i], want[i])
		}
	}
	// Monotone in probability — the property the fuzz seed corpus extends.
	for i := 1; i < len(res.Tail.Quantiles); i++ {
		if res.Tail.Quantiles[i].Value < res.Tail.Quantiles[i-1].Value {
			t.Errorf("quantiles not monotone at %d", i)
		}
	}
	// No spec: exceedance fields are the explicit no-data values.
	if !math.IsNaN(res.Tail.P) || res.Tail.Source != "" {
		t.Errorf("spec-less tail has P=%v source=%q, want NaN and empty", res.Tail.P, res.Tail.Source)
	}
}

// TestTailISAgreesWithPlainMC is the in-package statistical cross-check: a
// healthy IS exceedance at a moderate tail must agree with a large plain-MC
// reference within combined z·SE, and use far fewer trials for a smaller SE.
func TestTailISAgreesWithPlainMC(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	probe := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 4000, Seed: 7, KeepTrials: true}
	ref, err := Run(probe, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	spec := stats.Quantile(ref.Trials, 0.99) // P ≈ 1e-2: resolvable by both estimators
	refEx := stats.ExceedanceOf(ref.Trials, spec)

	cfg := probe
	cfg.KeepTrials = false
	cfg.Samples = 500
	cfg.Tail = baseTailConfig(spec, 1000)
	res, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Tail
	if ts.Source != TailSourceIS {
		t.Fatalf("tail source %q (degraded=%v, %s), want %q", ts.Source, ts.Degraded, ts.DegradedReason, TailSourceIS)
	}
	z := (ts.P - refEx.P) / math.Hypot(ts.SE, refEx.SE)
	if math.Abs(z) > 5 {
		t.Errorf("IS exceedance %v ± %v vs plain reference %v ± %v: z = %.1f", ts.P, ts.SE, refEx.P, refEx.SE, z)
	}
	if ts.ISHits == 0 || ts.HitESS < DefaultMinESS {
		t.Errorf("IS diagnostics hits=%d hitESS=%v, want a healthy run", ts.ISHits, ts.HitESS)
	}
	if !(ts.ESSRatio > 0 && ts.ESSRatio <= 1+1e-12) {
		t.Errorf("ESS ratio %v outside (0, 1]", ts.ESSRatio)
	}
	if ts.Shift >= 0 {
		t.Errorf("tilt %v not negative: leakage rises as L falls, so the upper tail needs a negative shift", ts.Shift)
	}
}

// TestTailZeroShiftMatchesPlain pins the θ→0 degeneracy: with an explicit
// tiny tilt the weights are ≈1 and the IS estimate of a mid-distribution
// spec lands near the plain estimate of its own trial stream.
func TestTailZeroShiftMatchesPlain(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	probe := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 800, Seed: 11, KeepTrials: true}
	ref, err := Run(probe, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	spec := stats.Quantile(ref.Trials, 0.5)
	cfg := probe
	cfg.Tail = &TailConfig{Spec: spec, ISTrials: 800, Shift: -1e-12}
	res, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Tail
	if ts.Source != TailSourceIS {
		t.Fatalf("tail source %q, want is (reason: %s)", ts.Source, ts.DegradedReason)
	}
	if math.Abs(ts.P-0.5) > 0.1 {
		t.Errorf("near-zero-tilt IS estimate %v far from 0.5", ts.P)
	}
	// Weights within rounding of 1 → ESS ≈ n.
	if math.Abs(ts.ESS-float64(ts.ISTrials)) > 1e-6*float64(ts.ISTrials) {
		t.Errorf("ESS %v at θ≈0, want ≈ %d", ts.ESS, ts.ISTrials)
	}
}

// TestTailFallbacks covers the typed degradations: an all-WID process has
// nothing to tilt, and an ESS floor above anything achievable forces the
// documented fallback to plain MC — both flagged, neither an error.
func TestTailFallbacks(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	probe := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 400, Seed: 3, KeepTrials: true}
	ref, err := Run(probe, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	spec := stats.Quantile(ref.Trials, 0.9)

	t.Run("all-wid", func(t *testing.T) {
		wid := &spatial.Process{
			LNominal: proc.LNominal,
			SigmaWID: proc.TotalSigma(),
			SigmaVt:  proc.SigmaVt,
			WIDCorr:  proc.WIDCorr,
		}
		cfg := probe
		cfg.Proc = wid
		cfg.Tail = baseTailConfig(spec, 200)
		res, err := Run(cfg, nl, pl)
		if err != nil {
			t.Fatal(err)
		}
		ts := res.Tail
		if !ts.Degraded || ts.Source != TailSourceMC || ts.ISTrials != 0 {
			t.Errorf("all-WID tail = source %q degraded=%v isTrials=%d, want mc/degraded/0", ts.Source, ts.Degraded, ts.ISTrials)
		}
		if !strings.Contains(ts.DegradedReason, "die-to-die") {
			t.Errorf("reason %q does not name the missing D2D variance", ts.DegradedReason)
		}
		if ts.P != ts.MCP {
			t.Errorf("degraded P %v != plain MCP %v", ts.P, ts.MCP)
		}
	})

	t.Run("ess-floor", func(t *testing.T) {
		cfg := probe
		cfg.Tail = baseTailConfig(spec, 200)
		cfg.Tail.MinESS = 1e9
		res, err := Run(cfg, nl, pl)
		if err != nil {
			t.Fatal(err)
		}
		ts := res.Tail
		if ts.Source != TailSourceFallback || !ts.Degraded {
			t.Errorf("unreachable ESS floor: source %q degraded=%v, want fallback/true", ts.Source, ts.Degraded)
		}
		if ts.P != ts.MCP || ts.SE != ts.MCSE {
			t.Errorf("fallback P/SE (%v, %v) != plain (%v, %v)", ts.P, ts.SE, ts.MCP, ts.MCSE)
		}
		if !strings.Contains(ts.DegradedReason, "ESS") {
			t.Errorf("reason %q does not name ESS", ts.DegradedReason)
		}
	})
}

// TestTailWeightScaleBiasesEstimate pins the conformance self-check hook: a
// 2× weight scale doubles the IS exceedance while leaving the ESS
// diagnostics untouched (uniform scaling is invisible to ESS — exactly why
// the mutation must be caught by the statistical gate, not a health check).
func TestTailWeightScaleBiasesEstimate(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	probe := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 400, Seed: 9, KeepTrials: true}
	ref, err := Run(probe, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probe
	cfg.Tail = baseTailConfig(stats.Quantile(ref.Trials, 0.95), 400)
	fair, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tail = baseTailConfig(cfg.Tail.Spec, 400)
	cfg.Tail.WeightScale = 2
	biased, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	ft, bt := fair.Tail, biased.Tail
	if ft.Source != TailSourceIS || bt.Source != TailSourceIS {
		t.Fatalf("sources %q/%q, want both is", ft.Source, bt.Source)
	}
	if math.Abs(bt.P-2*ft.P) > 1e-12*ft.P {
		t.Errorf("2× weight scale gives P %v, want exactly 2×%v", bt.P, ft.P)
	}
	if bt.ESS != ft.ESS || bt.HitESS != ft.HitESS {
		t.Errorf("ESS diagnostics changed under uniform scaling: %v/%v vs %v/%v", bt.ESS, bt.HitESS, ft.ESS, ft.HitESS)
	}
}

// TestTailWeightFaultSurfacesTyped proves a poisoned likelihood-ratio
// weight is a typed Numerical error, never a silent NaN probability.
func TestTailWeightFaultSurfacesTyped(t *testing.T) {
	defer fault.Reset()
	lib, proc, nl, pl := testSetup(t, 16)
	probe := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 100, Seed: 2, KeepTrials: true}
	ref, err := Run(probe, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := probe
	cfg.Tail = &TailConfig{Spec: stats.Quantile(ref.Trials, 0.9), ISTrials: 50}
	fault.Arm(fault.SiteISWeight, fault.Action{Kind: fault.NaN})
	_, err = Run(cfg, nl, pl)
	if err == nil {
		t.Fatal("NaN weight produced no error")
	}
	if !lkerr.IsCode(err, lkerr.Numerical) {
		t.Fatalf("NaN weight error %v not typed Numerical", err)
	}
}

// TestTailConfigValidation rejects malformed tail requests with typed
// InvalidInput errors before any trial runs.
func TestTailConfigValidation(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 16)
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 50, Seed: 1}
	cases := []struct {
		name string
		tail TailConfig
	}{
		{"negative-spec", TailConfig{Spec: -1}},
		{"nan-spec", TailConfig{Spec: math.NaN()}},
		{"inf-spec", TailConfig{Spec: math.Inf(1)}},
		{"negative-is-trials", TailConfig{Spec: 1, ISTrials: -5}},
		{"is-without-spec", TailConfig{ISTrials: 100}},
		{"bad-quantile", TailConfig{Quantiles: []float64{1.0}}},
		{"nan-quantile", TailConfig{Quantiles: []float64{math.NaN()}}},
		{"nan-shift", TailConfig{Spec: 1, Shift: math.NaN()}},
		{"negative-weight-scale", TailConfig{Spec: 1, WeightScale: -2}},
		{"negative-min-ess", TailConfig{Spec: 1, MinESS: -1}},
	}
	for _, tc := range cases {
		cfg := base
		tail := tc.tail
		cfg.Tail = &tail
		_, err := Run(cfg, nl, pl)
		if err == nil || !lkerr.IsCode(err, lkerr.InvalidInput) {
			t.Errorf("%s: error %v, want typed InvalidInput", tc.name, err)
		}
	}
}

// TestTailTrialBodyAllocs extends the zero-alloc guard to the importance-
// sampled trial body: after warm-up, a tilted trial allocates nothing on
// either field path (the likelihood-ratio bookkeeping happens in the serial
// reduction, not per trial).
func TestTailTrialBodyAllocs(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, IncludeVt: true}
	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		t.Fatal(err)
	}
	wid, err := newWIDSampler(context.Background(), proc, pl, len(nl.Gates))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"dense", "fft"} {
		runner := &tailRunner{
			gates:   gates,
			stream:  stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/tail#"),
			lnom:    proc.LNominal,
			sd2d:    proc.SigmaD2D,
			tilt:    -3,
			sigmaVt: proc.SigmaVt,
			bufs:    make([]tailBuf, 1),
		}
		if mode == "dense" {
			runner.wid = wid
		} else {
			gs, err := randvar.NewGridSampler(proc, pl.Grid)
			if err != nil {
				t.Fatal(err)
			}
			runner.grid = gs
			runner.sites = pl.Site
		}
		if _, _, err := runner.runTrial(0, 0); err != nil { // warm the buffers
			t.Fatal(err)
		}
		trial := 1
		allocs := testing.AllocsPerRun(100, func() {
			if _, _, err := runner.runTrial(0, trial); err != nil {
				t.Fatal(err)
			}
			trial++
		})
		if allocs != 0 {
			t.Errorf("%s tail trial body allocates %.1f times per trial, want 0", mode, allocs)
		}
	}
}
