package chipmc

import (
	"context"
	"math/rand"
	"strconv"
	"time"

	"leakest/internal/fault"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// This file is the tiled Monte-Carlo path of DESIGN.md §16. The placement
// grid is partitioned into a Tiles×Tiles arrangement; each trial draws one
// chip-wide D2D deviate from its own stream, then a WID-only field per tile
// from the tile's own circulant embedding and its own per-(tile, trial)
// stream. Field memory scales with the largest tile instead of the die —
// the monolithic FFT path walls out at the 4096² torus cap — which is what
// lifts the MC gate budget to DefaultMaxGatesTiled. The sampled law keeps
// the exact within-tile correlation and drops cross-tile WID correlation to
// the D2D floor; the conformance harness gates that approximation against
// an exact pairwise reference (internal/conformance, tiled gates).

// DefaultMaxGatesTiled is the default gate bound for the tiled sampler.
// Per-trial cost is ΣS_t log S_t over tile torus sizes plus O(n) gate
// evaluation; memory is O(n) gate state plus O(largest tile) field scratch
// per worker.
const DefaultMaxGatesTiled = 2000000

// tileSlot holds one tile's share of the design: which sampler geometry it
// uses and which gates (with their tile-local site indices) it covers.
type tileSlot struct {
	// sampler indexes tiledRunner.samplers; -1 for a tile with no gates.
	sampler int
	gates   []int
	sites   []int
}

// tiledBuf is one worker's private trial state, warmed on first use and
// reused across every tile and trial afterwards (the between-tile buffer
// pool of the §16 contract; guarded by TestTiledTrialBodyAllocs). Field and
// scratch buffers are held per distinct sampler geometry — at most four
// under the largest-remainder partition — not per tile.
type tiledBuf struct {
	rng    *rand.Rand
	ls     []float64
	fields [][]float64
	scs    []*randvar.GridScratch
}

// tiledRunner holds everything a tiled chip-level trial needs, set up once
// per run.
type tiledRunner struct {
	gates    []gateState
	sigmaD2D float64
	sigmaVt  float64
	// d2dStream seeds the shared per-trial D2D deviate, gateStream the
	// per-gate state/Vt draws, and tileStreams[t] the tile-t field draws.
	// Every stream is keyed by (Seed, trial), so trials are bitwise
	// independent of worker scheduling.
	d2dStream   stats.Stream
	gateStream  stats.Stream
	tileStreams []stats.Stream
	slots       []tileSlot
	samplers    []*randvar.GridSampler
	bufs        []tiledBuf
}

// warm allocates a worker's buffers on its first trial; everything after is
// allocation-free.
func (r *tiledRunner) warm(b *tiledBuf) {
	b.rng = rand.New(rand.NewSource(1))
	b.ls = make([]float64, len(r.gates))
	b.fields = make([][]float64, len(r.samplers))
	b.scs = make([]*randvar.GridScratch, len(r.samplers))
	for i, gs := range r.samplers {
		b.fields[i] = make([]float64, gs.Sites())
		b.scs[i] = gs.NewScratch()
	}
}

// runTrial executes one tiled chip-level trial on worker w. Draw order —
// the shared D2D deviate, then each tile's field in tile-index order, then
// the per-gate state/Vt draws — is part of the determinism contract: each
// stage reseeds the worker RNG from its own stream, so the result is
// bitwise identical at any worker count.
func (r *tiledRunner) runTrial(w, trial int) (float64, error) {
	b := &r.bufs[w]
	if b.rng == nil {
		r.warm(b)
	}
	rng := b.rng
	rng.Seed(r.d2dStream.SeedFor(trial))
	shift := r.sigmaD2D * rng.NormFloat64()
	for ti := range r.slots {
		slot := &r.slots[ti]
		if slot.sampler < 0 {
			continue
		}
		field := b.fields[slot.sampler]
		rng.Seed(r.tileStreams[ti].SeedFor(trial))
		if err := r.samplers[slot.sampler].SampleInto(rng, b.scs[slot.sampler], field); err != nil {
			return 0, err
		}
		for i, g := range slot.gates {
			b.ls[g] = field[slot.sites[i]] + shift
		}
	}
	rng.Seed(r.gateStream.SeedFor(trial))
	return chipTotal(r.gates, rng, b.ls, r.sigmaVt), nil
}

// newTiledRunner partitions the placement, assigns gates to tiles, and
// builds one WID-only grid sampler per distinct tile geometry. It observes
// tile_duration_seconds per tile and chipmc_tiles_total per run.
func newTiledRunner(ctx context.Context, cfg Config, nl *netlist.Netlist, pl *placement.Placement, gates []gateState) (*tiledRunner, error) {
	const op = "chipmc.Run"
	grid := pl.Grid
	parts := placement.Partition(grid, cfg.Tiles)
	telemetry.Add("chipmc_tiles_total", int64(len(parts)))
	telemetry.SpanAttrInt(ctx, "chipmc.tiles", int64(len(parts)))

	// Row/column → tile-coordinate lookups from the partition edges.
	rowEdges := placement.TileEdges(grid.Rows, cfg.Tiles)
	colEdges := placement.TileEdges(grid.Cols, cfg.Tiles)
	rowTile := edgeLookup(rowEdges, grid.Rows)
	colTile := edgeLookup(colEdges, grid.Cols)
	tc := len(colEdges) - 1

	slots := make([]tileSlot, len(parts))
	for i := range slots {
		slots[i].sampler = -1
	}
	for g, s := range pl.Site {
		row, col := s/grid.Cols, s%grid.Cols
		ti := rowTile[row]*tc + colTile[col]
		t := parts[ti]
		local := (row-t.Row0)*t.Cols() + (col - t.Col0)
		slots[ti].gates = append(slots[ti].gates, g)
		slots[ti].sites = append(slots[ti].sites, local)
	}

	endSetup := telemetry.StartSpan(ctx, "chipmc.tile_setup")
	defer endSetup()
	widProc := cfg.Proc.WIDOnly()
	type dims struct{ rows, cols int }
	samplerIdx := make(map[dims]int)
	var samplers []*randvar.GridSampler
	for ti, t := range parts {
		if len(slots[ti].gates) == 0 {
			continue
		}
		start := time.Now()
		d := dims{t.Rows(), t.Cols()}
		idx, ok := samplerIdx[d]
		if !ok {
			sub := placement.Grid{Rows: d.rows, Cols: d.cols, SiteW: grid.SiteW, SiteH: grid.SiteH}
			gs, gerr := randvar.NewGridSamplerContext(ctx, widProc, sub)
			if gerr == nil {
				if ferr := fault.Failure(fault.SiteFFTSetup); ferr != nil {
					gs, gerr = nil, ferr
				}
			}
			if gerr != nil {
				return nil, lkerr.Wrap(lkerr.Numerical, op, gerr)
			}
			idx = len(samplers)
			samplers = append(samplers, gs)
			samplerIdx[d] = idx
		}
		slots[ti].sampler = idx
		if telemetry.MetricsOn() {
			telemetry.ObserveSeconds("tile_duration_seconds", time.Since(start).Seconds())
		}
	}

	runner := &tiledRunner{
		gates:      gates,
		sigmaD2D:   cfg.Proc.SigmaD2D,
		d2dStream:  stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/d2d#"),
		gateStream: stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/tilegates#"),
		slots:      slots,
		samplers:   samplers,
	}
	if cfg.IncludeVt {
		runner.sigmaVt = cfg.Proc.SigmaVt
	}
	runner.tileStreams = make([]stats.Stream, len(parts))
	for ti := range parts {
		runner.tileStreams[ti] = stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/tile"+strconv.Itoa(ti)+"/trial#")
	}
	return runner, nil
}

// edgeLookup expands partition edges into a per-unit tile-coordinate table:
// out[i] is the tile row (or column) that unit i falls in.
func edgeLookup(edges []int, dim int) []int {
	out := make([]int, dim)
	for t := 0; t < len(edges)-1; t++ {
		for i := edges[t]; i < edges[t+1]; i++ {
			out[i] = t
		}
	}
	return out
}

// runTiledContext is the tiled counterpart of the monolithic trial fan-out
// in RunContext: same per-trial stream determinism, same Welford reduction
// in trial order, same final-moment guards. The peak-memory high-water mark
// is sampled after setup and after the trials so the O(largest tile) field
// memory claim is auditable from the process_peak_alloc_bytes gauge.
func runTiledContext(ctx context.Context, cfg Config, nl *netlist.Netlist, pl *placement.Placement, gates []gateState) (Result, error) {
	const op = "chipmc.Run"
	runner, err := newTiledRunner(ctx, cfg, nl, pl, gates)
	if err != nil {
		return Result{}, err
	}
	telemetry.SamplePeakAlloc()
	defer timeRun(SamplerFFT)()

	workers := parallel.Resolve(cfg.Workers, cfg.Samples)
	runner.bufs = make([]tiledBuf, workers)
	totals := make([]float64, cfg.Samples)
	telemetry.Inc(telemetry.Label("chipmc_sampler_runs_total", "sampler", "tiled-fft"))
	telemetry.SpanAttrStr(ctx, "chipmc.sampler", "tiled-fft")
	telemetry.SpanAttrInt(ctx, "chipmc.trials", int64(cfg.Samples))
	telemetry.SpanAttrInt(ctx, "chipmc.workers", int64(workers))
	endTrials := telemetry.StartSpan(ctx, "chipmc.trials")
	rep := telemetry.StartProgress(ctx, "chipmc.trials", int64(cfg.Samples))
	tick := parallel.NewTicker(rep)
	var trialsC *telemetry.Counter
	if r := telemetry.Default(); r != nil {
		trialsC = r.Counter("chipmc_trials_total")
	}
	err = parallel.ForEach(ctx, op, workers, cfg.Samples, func(w, trial int) error {
		trialsC.Inc()
		fault.Hit(fault.SiteChipMCTrial)
		total, terr := runner.runTrial(w, trial)
		if terr != nil {
			return lkerr.Wrap(lkerr.Numerical, op, terr)
		}
		totals[trial] = fault.Corrupt(fault.SiteChipMCTrial, total)
		tick.Tick()
		return nil
	})
	if err != nil {
		rep.Done(tick.Count())
		endTrials()
		return Result{}, err
	}
	var run stats.Running
	for _, total := range totals {
		run.Push(total)
	}
	rep.Done(int64(cfg.Samples))
	endTrials()
	telemetry.SamplePeakAlloc()
	res := Result{
		Mean:    run.Mean(),
		Std:     run.StdDev(),
		Q05:     stats.Quantile(totals, 0.05),
		Q95:     stats.Quantile(totals, 0.95),
		Samples: cfg.Samples,
	}
	if cfg.KeepTrials {
		res.Trials = append([]float64(nil), totals...)
	}
	if err := lkerr.CheckFinite(op, "mean", res.Mean); err != nil {
		return Result{}, err
	}
	if err := lkerr.CheckFinite(op, "std", res.Std); err != nil {
		return Result{}, err
	}
	return res, nil
}
