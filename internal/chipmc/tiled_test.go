package chipmc

import (
	"context"
	"math"
	"testing"

	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

// TestTiledValidation: tiled sampling composes only with the fft/auto
// samplers and without the tail stage; bad tile counts are refused.
func TestTiledValidation(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 16, Seed: 5, Tiles: 2}
	for name, mutate := range map[string]func(*Config){
		"dense":    func(c *Config) { c.Sampler = SamplerDense },
		"qmc":      func(c *Config) { c.Sampler = SamplerQMC },
		"tail":     func(c *Config) { c.Tail = &TailConfig{Quantiles: []float64{0.99}} },
		"negative": func(c *Config) { c.Tiles = -1 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg, nl, pl); !lkerr.IsCode(err, lkerr.InvalidInput) {
			t.Errorf("%s: got %v, want InvalidInput", name, err)
		}
	}
	// Tiles = 0 and 1 select the monolithic path and must succeed.
	for _, tiles := range []int{0, 1} {
		cfg := base
		cfg.Tiles = tiles
		if _, err := Run(cfg, nl, pl); err != nil {
			t.Errorf("Tiles=%d: %v", tiles, err)
		}
	}
}

// TestTiledWorkerInvariance: per-trial and per-(tile, trial) streams make
// the tiled run bitwise reproducible at any worker count.
func TestTiledWorkerInvariance(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 144)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 120, Seed: 8,
		Tiles: 3, KeepTrials: true, IncludeVt: true}
	cfg.Workers = 1
	serial, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Mean != par.Mean || serial.Std != par.Std {
		t.Fatalf("worker count changed tiled results: µ %v vs %v, σ %v vs %v",
			serial.Mean, par.Mean, serial.Std, par.Std)
	}
	for i := range serial.Trials {
		if serial.Trials[i] != par.Trials[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

// TestTiledMatchesMonolithic compares the tiled sampler against the
// monolithic FFT sampler on a design whose correlation range is shorter
// than a tile: there the dropped cross-tile WID correlation is a small
// perturbation and both moments must agree within z·(combined SE) plus a
// border allowance.
func TestTiledMatchesMonolithic(t *testing.T) {
	lib, _, _, _ := testSetup(t, 4)
	// Short-range correlation relative to the 3-tile partition of a 15×15
	// grid (tile side 10 µm, λ = 3 µm hard-capped at 12 µm).
	proc := &spatial.Process{
		LNominal: spatial.Default90nm().LNominal,
		SigmaD2D: spatial.Default90nm().SigmaD2D,
		SigmaWID: spatial.Default90nm().SigmaWID,
		SigmaVt:  spatial.Default90nm().SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 3, R: 12},
	}
	hist, _ := stats.NewHistogram(map[string]float64{"INV_X1": 2, "NAND2_X1": 2, "NOR2_X1": 1})
	rng := stats.NewRNG(99, "chipmc-tiled")
	const n = 225
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	nl, err := netlist.RandomCircuit(rng, "mc-tiled", n, 8, hist,
		func(typ string) (int, error) { return byName[typ], nil })
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 2500
	mono, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: samples,
		Seed: 21, Sampler: SamplerFFT}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: samples,
		Seed: 21, Tiles: 3}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mono: µ=%.5g σ=%.5g | tiled: µ=%.5g σ=%.5g", mono.Mean, mono.Std, tiled.Mean, tiled.Std)
	const z = 5
	meanTol := z * math.Hypot(mono.MeanSE(), tiled.MeanSE())
	if d := math.Abs(tiled.Mean - mono.Mean); d > meanTol {
		t.Errorf("tiled mean %.6g vs mono %.6g: |Δ| = %.3g > %.3g", tiled.Mean, mono.Mean, d, meanTol)
	}
	// σ carries the border approximation on top of sampling error; allow an
	// extra 3% of σ for the dropped cross-tile WID covariance.
	stdTol := z*math.Hypot(mono.StdSE(), tiled.StdSE()) + 0.03*mono.Std
	if d := math.Abs(tiled.Std - mono.Std); d > stdTol {
		t.Errorf("tiled σ %.6g vs mono %.6g: |Δ| = %.3g > %.3g", tiled.Std, mono.Std, d, stdTol)
	}
}

// TestTiledSamplerReuse: interior tiles share their sub-grid geometry, so
// the runner must build at most a handful of distinct embeddings, not one
// per tile.
func TestTiledSamplerReuse(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 225)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Tiles: 3}
	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := newTiledRunner(context.Background(), cfg, nl, pl, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(runner.slots) != 9 {
		t.Fatalf("got %d tiles, want 9", len(runner.slots))
	}
	if len(runner.samplers) > 4 {
		t.Fatalf("%d distinct samplers for a 3×3 partition, want ≤ 4", len(runner.samplers))
	}
	// Every gate appears in exactly one tile, with a valid local site.
	seen := make([]int, len(nl.Gates))
	for ti, slot := range runner.slots {
		if len(slot.gates) != len(slot.sites) {
			t.Fatalf("tile %d: %d gates but %d sites", ti, len(slot.gates), len(slot.sites))
		}
		if len(slot.gates) > 0 && slot.sampler < 0 {
			t.Fatalf("tile %d has gates but no sampler", ti)
		}
		max := 0
		if slot.sampler >= 0 {
			max = runner.samplers[slot.sampler].Sites()
		}
		for i, g := range slot.gates {
			seen[g]++
			if slot.sites[i] < 0 || slot.sites[i] >= max {
				t.Fatalf("tile %d gate %d: local site %d outside [0,%d)", ti, g, slot.sites[i], max)
			}
		}
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("gate %d assigned to %d tiles", g, c)
		}
	}
}

// TestTiledTrialBodyAllocs pins the §16 scratch-reuse contract: once a
// worker's buffers are warm, the tiled trial body — shared D2D draw, one
// field per tile, the gate pass — allocates nothing.
func TestTiledTrialBodyAllocs(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 225)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, IncludeVt: true, Tiles: 3}
	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := newTiledRunner(context.Background(), cfg, nl, pl, gates)
	if err != nil {
		t.Fatal(err)
	}
	runner.bufs = make([]tiledBuf, 1)
	if _, err := runner.runTrial(0, 0); err != nil { // warm the buffers
		t.Fatal(err)
	}
	trial := 1
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := runner.runTrial(0, trial); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if allocs != 0 {
		t.Errorf("tiled trial body allocates %.1f times per trial, want 0", allocs)
	}
}

// TestTiledBudget: the tiled path carries its own default gate budget and
// honors an explicit MaxGates.
func TestTiledBudget(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 16, Seed: 5,
		Tiles: 2, MaxGates: 10}
	if _, err := Run(cfg, nl, pl); !lkerr.IsCode(err, lkerr.BudgetExceeded) {
		t.Fatalf("explicit MaxGates not enforced on the tiled path")
	}
	cfg.MaxGates = 0
	if _, err := Run(cfg, nl, pl); err != nil {
		t.Fatalf("default tiled budget refused 64 gates: %v", err)
	}
}
