package chipmc

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"leakest/internal/fault"
	"leakest/internal/linalg"
	"leakest/internal/lkerr"
	"leakest/internal/parallel"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// This file extends the Monte Carlo from moment estimation to distribution
// estimation: quantiles of the sampled chip-leakage distribution, the
// exceedance probability P[I_leak > spec] (one minus parametric yield at the
// spec), and a mean-shifted importance-sampling estimator that reaches deep
// tails (P ~ 1e-4 and below) with orders of magnitude fewer trials than
// plain MC.
//
// The importance sampler exploits the structure of the paper's variation
// model: the die-to-die component is a single scalar N(0, σ_D2D²) shared by
// every gate, and full-chip leakage is monotone in it (leakage rises as
// channel length falls). Tilting only that scalar by θ — drawing
// z₀ + θ instead of z₀ — shifts whole-chip leakage into the tail while the
// likelihood ratio stays one-dimensional and exactly computable:
//
//	w(z₀) = φ(z₀+θ)/φ_proposal = exp(−θ·z₀ − θ²/2)
//
// where z₀ is the RAW standard-normal draw (so the proposal sample is
// z₀ + θ). The within-die field, state draws, and Vt factors are sampled
// from their nominal distributions under both measures, so the weight is an
// exact likelihood ratio and the estimator (1/n)·Σ w_i·1{I_i > spec} is
// unbiased for any θ. At θ = 0 the proposal degenerates to plain MC with
// unit weights, bitwise.
//
// Health is judged on the effective sample size over the *exceeding* trials
// (HitESS): the overall Kish ESS is ≈ n·e^{−θ²} by design (the tilt
// deliberately makes typical-region weights tiny) and says nothing about
// tail accuracy. When HitESS falls below TailConfig.MinESS the estimator
// degrades to the plain-MC exceedance, recording the fallback in the result
// (Source, Degraded, DegradedReason), in the chipmc_is_fallback_total
// counter, and as a span attribute — a typed degradation, not an error.

// DefaultMinESS is the minimum effective sample size over exceeding trials
// below which the IS estimate is considered unhealthy and the result falls
// back to plain MC. 8 effective tail samples bound the relative SE of the
// exceedance near 1/√8 ≈ 35%, the edge of usefulness.
const DefaultMinESS = 8

// Tilt magnitude clamp: below minTilt the tilt is not worth the weight
// variance it introduces; above maxTilt the hit weights grow so dispersed
// that HitESS collapses. The auto-selected |θ| is clamped into this range.
const (
	minTilt = 0.5
	maxTilt = 5.0
)

// autoTilt is the |θ| used when the lognormal moment fit cannot place the
// spec (degenerate moments); it targets the P ≈ 1e-3..1e-4 band the deep-
// tail estimator exists for.
const autoTilt = 3.0

// TailConfig enables distribution-tail estimation on top of a Monte-Carlo
// run. The zero value (and a nil Config.Tail) disables the stage entirely.
type TailConfig struct {
	// Spec is the leakage spec in amperes; when > 0 the run reports the
	// exceedance probability P[I_leak > Spec]. Zero disables exceedance
	// (quantiles may still be requested).
	Spec float64
	// Quantiles lists the probabilities to report quantiles at, each
	// strictly inside (0, 1); duplicates are dropped and the output is
	// ascending. Empty requests no quantiles.
	Quantiles []float64
	// ISTrials is the importance-sampled trial count for the deep-tail
	// exceedance estimate; 0 disables importance sampling (the exceedance
	// then comes from the primary trials alone). Requires Spec > 0.
	ISTrials int
	// Shift overrides the auto-selected tilt θ applied to the shared
	// die-to-die deviate. 0 selects automatically from a lognormal fit of
	// the primary-run moments; the sign is inferred from the design's
	// leakage-vs-length sensitivity.
	Shift float64
	// MinESS is the minimum effective sample size over exceeding IS trials
	// before the estimate degrades to plain MC (default DefaultMinESS).
	MinESS float64
	// WeightScale multiplies every likelihood-ratio weight; 0 means 1
	// (unbiased). Any other value deliberately mis-weights the estimator.
	// It exists for the conformance mutation self-check, which must prove
	// from a plain binary — where test-only fault injection is unavailable
	// — that a biased IS estimator trips the statistical gate.
	WeightScale float64
}

// validate canonicalizes the tail configuration, returning the normalized
// quantile list.
func (tc *TailConfig) validate(op string) ([]float64, error) {
	if math.IsNaN(tc.Spec) || math.IsInf(tc.Spec, 0) || tc.Spec < 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "tail spec %g must be finite and non-negative", tc.Spec)
	}
	if tc.ISTrials < 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "negative IS trial count %d", tc.ISTrials)
	}
	if tc.ISTrials > 0 && tc.Spec == 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "importance sampling requires a positive tail spec")
	}
	if math.IsNaN(tc.Shift) || math.IsInf(tc.Shift, 0) {
		return nil, lkerr.New(lkerr.InvalidInput, op, "tail shift %g must be finite", tc.Shift)
	}
	if math.IsNaN(tc.MinESS) || tc.MinESS < 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "tail MinESS %g must be non-negative", tc.MinESS)
	}
	if math.IsNaN(tc.WeightScale) || math.IsInf(tc.WeightScale, 0) || tc.WeightScale < 0 {
		return nil, lkerr.New(lkerr.InvalidInput, op, "tail weight scale %g must be finite and non-negative", tc.WeightScale)
	}
	qs, err := stats.NormalizeQuantiles(tc.Quantiles)
	if err != nil {
		return nil, lkerr.Wrap(lkerr.InvalidInput, op, err)
	}
	return qs, nil
}

// QuantilePoint is one reported quantile of the chip-leakage distribution.
type QuantilePoint struct {
	// P is the probability the quantile was requested at.
	P float64 `json:"p"`
	// Value is the leakage quantile in amperes.
	Value float64 `json:"value_a"`
}

// Tail sources.
const (
	// TailSourceMC marks an exceedance estimated from the primary plain-MC
	// trials.
	TailSourceMC = "mc"
	// TailSourceIS marks a healthy importance-sampled exceedance.
	TailSourceIS = "is"
	// TailSourceFallback marks a run where importance sampling was
	// attempted but degraded to the plain-MC estimate (see DegradedReason).
	TailSourceFallback = "fallback"
)

// TailStats is the distribution-tail summary attached to Result when
// Config.Tail is set.
type TailStats struct {
	// Quantiles holds the requested leakage quantiles in ascending P.
	Quantiles []QuantilePoint `json:"quantiles,omitempty"`
	// Spec echoes the leakage spec; 0 when exceedance was not requested.
	Spec float64 `json:"spec_a,omitempty"`
	// P and SE are the reported exceedance probability P[I > Spec] and its
	// standard error, taken from the source named in Source. NaN when no
	// spec was set.
	P  float64 `json:"p_exceed"`
	SE float64 `json:"p_exceed_se"`
	// Source names where P came from: "mc", "is", or "fallback".
	Source string `json:"source,omitempty"`
	// MCP, MCSE, and MCHits are the plain-MC exceedance of the primary
	// trials, always reported alongside the headline estimate.
	MCP    float64 `json:"mc_p"`
	MCSE   float64 `json:"mc_p_se"`
	MCHits int     `json:"mc_hits"`
	// ISTrials is the importance-sampled trial count actually run.
	ISTrials int `json:"is_trials,omitempty"`
	// Shift is the tilt θ applied to the shared die-to-die deviate.
	Shift float64 `json:"is_shift,omitempty"`
	// ISHits counts proposal trials strictly above the spec.
	ISHits int `json:"is_hits,omitempty"`
	// ESS is the overall Kish effective sample size of the IS weights —
	// tiny by design under a deep tilt; diagnostic only.
	ESS float64 `json:"is_ess,omitempty"`
	// HitESS is the effective sample size over exceeding trials, the
	// health criterion of the fallback contract.
	HitESS float64 `json:"is_hit_ess,omitempty"`
	// ESSRatio is HitESS/ISHits in [0, 1]: how close the contributing
	// weights are to uniform (1 = plain-MC-equivalent tail samples).
	ESSRatio float64 `json:"is_ess_ratio,omitempty"`
	// Degraded reports that importance sampling was requested but the
	// headline estimate fell back to plain MC; DegradedReason says why.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// MarshalJSON renders TailStats with NaN-valued probability fields as null
// — the JSON no-data value — since encoding/json rejects NaN. Everything
// else marshals by the field tags.
func (ts TailStats) MarshalJSON() ([]byte, error) {
	finite := func(v float64) *float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return &v
	}
	type alias TailStats // drop the method to avoid recursion
	return json.Marshal(struct {
		alias
		P    *float64 `json:"p_exceed"`
		SE   *float64 `json:"p_exceed_se"`
		MCP  *float64 `json:"mc_p"`
		MCSE *float64 `json:"mc_p_se"`
	}{alias(ts), finite(ts.P), finite(ts.SE), finite(ts.MCP), finite(ts.MCSE)})
}

// tailBuf is one worker's private IS-trial scratch, allocated on first use
// (the trial body itself is allocation-free, like the primary path).
type tailBuf struct {
	rng   *rand.Rand
	ls    []float64 // per-gate channel lengths
	z     []float64 // dense-path WID standard-normal scratch
	field []float64 // FFT-path per-site field
	sc    *randvar.GridScratch
}

// tailRunner holds the importance-sampled trial state. The dense path
// decomposes the field explicitly — L_g = L_nom + σ_D2D·(z₀+θ) + wid_g with
// wid ~ N(0, σ_WID²·ρ) — which samples exactly the same distribution as the
// primary path's joint covariance Σ = σ_D2D²·11ᵀ + σ_WID²·R, since the D2D
// component is a rank-one common term. The grid path delegates to
// GridSampler.SampleTiltedInto, which applies the same decomposition on the
// torus.
type tailRunner struct {
	gates   []gateState
	sites   []int
	stream  stats.Stream
	grid    *randvar.GridSampler
	wid     *randvar.MVNSampler // zero-mean WID sampler; nil when σ_WID = 0
	lnom    float64
	sd2d    float64
	tilt    float64
	sigmaVt float64
	bufs    []tailBuf
}

func (r *tailRunner) warm(b *tailBuf) {
	n := len(r.gates)
	b.rng = rand.New(rand.NewSource(1))
	b.ls = make([]float64, n)
	if r.grid != nil {
		b.field = make([]float64, r.grid.Sites())
		b.sc = r.grid.NewScratch()
	} else if r.wid != nil {
		b.z = make([]float64, n)
	}
}

// runTrial executes one tilted trial on worker w, returning the chip total
// and the raw die-to-die deviate z₀ the weight is computed from. The draw
// order — z₀ first, within-die normals, then per-gate state and Vt draws —
// is fixed per trial stream, so results are bitwise identical at any worker
// count.
func (r *tailRunner) runTrial(w, trial int) (total, z0 float64, err error) {
	b := &r.bufs[w]
	if b.rng == nil {
		r.warm(b)
	}
	rng := b.rng
	rng.Seed(r.stream.SeedFor(trial))
	ls := b.ls
	if r.grid != nil {
		z0, err = r.grid.SampleTiltedInto(rng, b.sc, b.field, r.tilt)
		if err != nil {
			return 0, 0, err
		}
		for g, s := range r.sites {
			ls[g] = b.field[s]
		}
	} else {
		z0 = rng.NormFloat64()
		shift := r.lnom + r.sd2d*(z0+r.tilt)
		if r.wid != nil {
			r.wid.SampleInto(rng, b.z, ls)
			for g := range ls {
				ls[g] += shift
			}
		} else {
			for g := range ls {
				ls[g] = shift
			}
		}
	}
	return chipTotal(r.gates, rng, ls, r.sigmaVt), z0, nil
}

// selectTilt picks the tilt θ for the die-to-die deviate. The magnitude
// comes from a lognormal fit of the primary-run moments: the spec's
// standard-normal score under the fit is exactly the |θ| that centers the
// proposal on the spec (the variance-optimal neighborhood for a shifted-
// mean estimator). The sign comes from the design's leakage-vs-length
// sensitivity: leakage falls as channel length grows, so the upper leakage
// tail lives at negative z₀ and the tilt must be negative; the probe keeps
// the estimator correct for any monotone characterization.
func selectTilt(tc *TailConfig, res Result, gates []gateState, lnom float64) float64 {
	if tc.Shift != 0 {
		return tc.Shift
	}
	mag := autoTilt
	if mu, sigma, err := randvar.LogNormalFromMoments(res.Mean, res.Std); err == nil && tc.Spec > 0 {
		if z := (math.Log(tc.Spec) - mu) / sigma; !math.IsNaN(z) {
			mag = z
		}
	}
	if mag < minTilt {
		mag = minTilt
	}
	if mag > maxTilt {
		mag = maxTilt
	}
	st := gates[0].states[0]
	if st.Leakage(lnom*1.01) > st.Leakage(lnom*0.99) {
		return mag
	}
	return -mag
}

// runTail executes the tail stage after the primary trials: quantiles from
// the materialized per-trial totals, the plain exceedance, and — when
// requested — the importance-sampled deep-tail exceedance with its health-
// gated fallback.
func runTail(ctx context.Context, cfg Config, qs []float64, nl string, pl *placement.Placement,
	primary *trialRunner, totals []float64, res Result, workers int) (*TailStats, error) {
	const op = "chipmc.Tail"
	tc := cfg.Tail
	ctx, endTail := telemetry.WithSpan(ctx, "chipmc.tail")
	defer endTail()

	ts := &TailStats{Spec: tc.Spec, P: math.NaN(), SE: math.NaN(), MCP: math.NaN(), MCSE: math.NaN()}
	if len(qs) > 0 {
		vals := stats.Quantiles(totals, qs)
		ts.Quantiles = make([]QuantilePoint, len(qs))
		for i, q := range qs {
			ts.Quantiles[i] = QuantilePoint{P: q, Value: vals[i]}
		}
	}
	if tc.Spec == 0 {
		return ts, nil
	}

	plain := stats.ExceedanceOf(totals, tc.Spec)
	ts.MCP, ts.MCSE, ts.MCHits = plain.P, plain.SE, plain.Hits
	ts.P, ts.SE, ts.Source = plain.P, plain.SE, TailSourceMC

	if tc.ISTrials == 0 {
		return ts, nil
	}
	if cfg.Proc.SigmaD2D == 0 {
		// All-WID process: there is no shared deviate to tilt, so the
		// one-dimensional proposal cannot reach the tail. Typed degradation
		// to the plain estimate, not an error.
		ts.Degraded = true
		ts.DegradedReason = "no die-to-die variance to tilt; importance sampling skipped"
		telemetry.Add("chipmc_is_fallback_total", 1)
		telemetry.SpanAttrBool(ctx, "chipmc.is_fallback", true)
		return ts, nil
	}

	tr := &tailRunner{
		gates:   primary.gates,
		sites:   primary.sites,
		stream:  stats.NewStream(cfg.Seed, "chipmc/"+nl+"/tail#"),
		grid:    primary.grid,
		lnom:    cfg.Proc.LNominal,
		sd2d:    cfg.Proc.SigmaD2D,
		tilt:    selectTilt(tc, res, primary.gates, cfg.Proc.LNominal),
		sigmaVt: primary.sigmaVt,
		bufs:    make([]tailBuf, workers),
	}
	if tr.grid == nil && cfg.Proc.SigmaWID > 0 {
		wid, err := newWIDSampler(ctx, cfg.Proc, pl, len(primary.gates))
		if err != nil {
			return nil, err
		}
		tr.wid = wid
	}
	ts.ISTrials = tc.ISTrials
	ts.Shift = tr.tilt
	telemetry.SpanAttrFloat(ctx, "chipmc.is_shift", tr.tilt)
	telemetry.SpanAttrInt(ctx, "chipmc.tail_trials", int64(tc.ISTrials))

	isTotals := make([]float64, tc.ISTrials)
	isZ := make([]float64, tc.ISTrials)
	var tailC *telemetry.Counter
	if r := telemetry.Default(); r != nil {
		tailC = r.Counter("chipmc_tail_trials_total")
	}
	err := parallel.ForEach(ctx, op, workers, tc.ISTrials, func(w, trial int) error {
		tailC.Inc()
		total, z0, terr := tr.runTrial(w, trial)
		if terr != nil {
			return lkerr.Wrap(lkerr.Numerical, op, terr)
		}
		isTotals[trial] = total
		isZ[trial] = z0
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Likelihood-ratio weights, serially in trial order (part of the
	// bitwise determinism contract, like the primary moment reduction).
	scale := tc.WeightScale
	if scale == 0 {
		scale = 1
	}
	theta := tr.tilt
	halfT2 := 0.5 * theta * theta
	ws := make([]float64, tc.ISTrials)
	for i, z0 := range isZ {
		w := fault.Corrupt(fault.SiteISWeight, math.Exp(-theta*z0-halfT2)*scale)
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, lkerr.New(lkerr.Numerical, op,
				"non-finite importance weight %g at tail trial %d (θ=%g)", w, i, theta)
		}
		ws[i] = w
	}
	we := stats.ExceedanceWeighted(isTotals, ws, tc.Spec)
	ts.ISHits, ts.ESS, ts.HitESS = we.Hits, we.ESS, we.HitESS
	if we.Hits > 0 {
		ts.ESSRatio = we.HitESS / float64(we.Hits)
	}
	telemetry.SetGauge("chipmc_is_ess_ratio", ts.ESSRatio)
	telemetry.SpanAttrFloat(ctx, "chipmc.is_ess_ratio", ts.ESSRatio)

	minESS := tc.MinESS
	if minESS == 0 {
		minESS = DefaultMinESS
	}
	if we.HitESS >= minESS {
		ts.P, ts.SE, ts.Source = we.P, we.SE, TailSourceIS
		telemetry.SpanAttrBool(ctx, "chipmc.is_fallback", false)
	} else {
		ts.Source = TailSourceFallback
		ts.Degraded = true
		ts.DegradedReason = fmt.Sprintf(
			"importance-sampling hit ESS %.2f below minimum %g (%d hits in %d trials); using plain-MC exceedance",
			we.HitESS, minESS, we.Hits, tc.ISTrials)
		telemetry.Add("chipmc_is_fallback_total", 1)
		telemetry.SpanAttrBool(ctx, "chipmc.is_fallback", true)
	}
	if err := lkerr.CheckFinite(op, "tail exceedance", ts.P); err != nil {
		return nil, err
	}
	return ts, nil
}

// newWIDSampler factorizes the zero-mean within-die covariance
// σ_WID²·ρ(d_ab) for the dense tail path. A second O(n³) factorization is
// acceptable here: the dense path is bounded by DefaultMaxGates and tail
// estimation is opt-in.
func newWIDSampler(ctx context.Context, proc *spatial.Process, pl *placement.Placement, n int) (*randvar.MVNSampler, error) {
	const op = "chipmc.Tail"
	vw := proc.SigmaWID * proc.SigmaWID
	cov := linalg.NewMatrix(n, n)
	for a := 0; a < n; a++ {
		if err := lkerr.FromContext(ctx, op); err != nil {
			return nil, err
		}
		cov.Set(a, a, vw)
		for b := a + 1; b < n; b++ {
			c := vw * proc.WIDCorr.Rho(pl.Dist(a, b))
			cov.Set(a, b, c)
			cov.Set(b, a, c)
		}
	}
	sampler, err := randvar.NewMVNSampler(make([]float64, n), cov)
	if err != nil {
		return nil, lkerr.Wrap(lkerr.Numerical, op, err)
	}
	return sampler, nil
}
