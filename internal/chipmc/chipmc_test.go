package chipmc

import (
	"errors"
	"math"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/spatial"
	"leakest/internal/stats"
	"strings"
)

func testSetup(t *testing.T, n int) (*charlib.Library, *spatial.Process, *netlist.Netlist, *placement.Placement) {
	t.Helper()
	lib, err := charlib.SharedCore()
	if err != nil {
		t.Fatal(err)
	}
	base := spatial.Default90nm()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 20, R: 80},
	}
	hist, _ := stats.NewHistogram(map[string]float64{
		"INV_X1": 2, "NAND2_X1": 2, "NOR2_X1": 1,
	})
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	rng := stats.NewRNG(13, "chipmc-test")
	nl, err := netlist.RandomCircuit(rng, "mc-test", n, 8, hist,
		func(typ string) (int, error) { return byName[typ], nil })
	if err != nil {
		t.Fatal(err)
	}
	grid, _ := placement.AutoGrid(n)
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	return lib, proc, nl, pl
}

// The decisive cross-validation: the chip-level MC distribution must match
// the O(n²) analytic true statistics within sampling error.
func TestMCMatchesAnalyticTruth(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 225)
	spec, err := core.ExtractSpec(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(lib, proc, spec, MCMode())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.TrueStats(model, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 3000, Seed: 5}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("analytic: µ=%.4g σ=%.4g | MC: µ=%.4g σ=%.4g", truth.Mean, truth.Std, mc.Mean, mc.Std)
	// Mean: MC standard error ≈ σ/√N.
	se := truth.Std / math.Sqrt(float64(mc.Samples))
	if math.Abs(mc.Mean-truth.Mean) > 5*se {
		t.Errorf("MC mean %.5g vs analytic %.5g (> 5 SE = %.3g)", mc.Mean, truth.Mean, 5*se)
	}
	// Std: allow ~8% (sampling noise on σ of a skewed sum plus the
	// simplified ρ_leak=ρ_L mapping in the analytic pairwise covariances).
	if e := math.Abs(stats.RelErr(mc.Std, truth.Std)); e > 8 {
		t.Errorf("MC σ %.5g vs analytic %.5g (%.2f%%)", mc.Std, truth.Std, e)
	}
	if !(mc.Q05 < mc.Mean && mc.Mean < mc.Q95) {
		t.Errorf("quantiles disordered: %g %g %g", mc.Q05, mc.Mean, mc.Q95)
	}
}

// MCMode returns the core mode matching this package's curve-based
// sampling (MC moments + simplified correlation).
func MCMode() core.Mode { return core.MCSimplified }

func TestVtIncreasesMeanNotStd(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 144)
	base, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 2500, Seed: 9}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 2500, Seed: 9, IncludeVt: true}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	// The mean should rise by roughly the lognormal factor.
	factor := lib.VtMeanFactor()
	gotFactor := vt.Mean / base.Mean
	t.Logf("Vt mean factor: measured %.3f, analytic %.3f", gotFactor, factor)
	if math.Abs(gotFactor-factor)/factor > 0.1 {
		t.Errorf("Vt mean factor %.3f, want ≈ %.3f", gotFactor, factor)
	}
	// The paper's claim: relative spread barely changes because the
	// independent Vt contributions average out over the chip.
	baseCV := base.Std / base.Mean
	vtCV := vt.Std / vt.Mean
	if math.Abs(vtCV-baseCV)/baseCV > 0.25 {
		t.Errorf("Vt changed the leakage CV too much: %.4f vs %.4f", vtCV, baseCV)
	}
}

func TestRunValidation(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 16)
	cases := []Config{
		{},
		{Lib: lib},
		{Lib: lib, Proc: proc, SignalProb: 2},
		{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 2},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, nl, pl); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	empty := &netlist.Netlist{Name: "e"}
	if _, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5}, empty, pl); err == nil {
		t.Errorf("empty netlist accepted")
	}
	// Placement mismatch.
	grid, _ := placement.AutoGrid(4)
	small, _ := placement.RowMajor(grid, 4)
	if _, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5}, nl, small); err == nil {
		t.Errorf("mismatched placement accepted")
	}
	// Inconsistent process.
	wrong := *proc
	wrong.SigmaWID *= 3
	if _, err := Run(Config{Lib: lib, Proc: &wrong, SignalProb: 0.5}, nl, pl); err == nil {
		t.Errorf("inconsistent process accepted")
	}
}

func TestGateCountGuard(t *testing.T) {
	lib, proc, _, _ := testSetup(t, 16)
	big := &netlist.Netlist{Name: "big", NumPI: 1}
	for i := 0; i < DefaultMaxGates+1; i++ {
		big.Gates = append(big.Gates, netlist.Gate{Type: "INV_X1"})
	}
	grid, _ := placement.AutoGrid(DefaultMaxGates + 1)
	pl, _ := placement.RowMajor(grid, DefaultMaxGates+1)
	// The dense sampler keeps its historical O(n³) budget; auto now routes
	// designs this size to the FFT path instead of refusing them.
	_, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Sampler: SamplerDense}, big, pl)
	if err == nil {
		t.Fatalf("oversized netlist accepted by the dense sampler")
	}
	if !errors.Is(err, lkerr.ErrBudgetExceeded) {
		t.Errorf("gate-count guard returned %v, want BudgetExceeded", err)
	}
	// The FFT sampler has a budget too.
	_, err = Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Sampler: SamplerFFT,
		MaxGates: DefaultMaxGates}, big, pl)
	if !errors.Is(err, lkerr.ErrBudgetExceeded) {
		t.Errorf("FFT gate-count guard returned %v, want BudgetExceeded", err)
	}
	// The configured limit overrides the default, and the error names it.
	_, err = Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, MaxGates: 8}, big, pl)
	if !errors.Is(err, lkerr.ErrBudgetExceeded) || !strings.Contains(err.Error(), "MaxGates=8") {
		t.Errorf("configured limit not reported: %v", err)
	}
	// Raising the budget admits the design (don't run it: just check the
	// guard no longer fires by using a tiny but sufficient netlist).
	small := &netlist.Netlist{Name: "small", NumPI: 1,
		Gates: []netlist.Gate{{Type: "INV_X1"}, {Type: "INV_X1"}}}
	sg, _ := placement.AutoGrid(2)
	spl, _ := placement.RowMajor(sg, 2)
	if _, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, MaxGates: 2, Samples: 10}, small, spl); err != nil {
		t.Errorf("within-budget run failed: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 36)
	a, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 200, Seed: 3}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 200, Seed: 3}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Std != b.Std {
		t.Errorf("same seed produced different results")
	}
	c, _ := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 200, Seed: 4}, nl, pl)
	if a.Mean == c.Mean {
		t.Errorf("different seeds produced identical results")
	}
}

// The lognormal two-moment approximation of the full-chip distribution
// (core.Distribution) should track the sampled quantiles.
func TestLognormalApproximationTracksQuantiles(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 225)
	mc, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 4000, Seed: 12}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDistribution(mc.Mean, mc.Std)
	if err != nil {
		t.Fatal(err)
	}
	p05 := d.Quantile(0.05)
	p95 := d.Quantile(0.95)
	t.Logf("MC [q05,q95] = [%.4g, %.4g], lognormal = [%.4g, %.4g]", mc.Q05, mc.Q95, p05, p95)
	if math.Abs(p05-mc.Q05)/mc.Q05 > 0.06 {
		t.Errorf("q05: lognormal %.4g vs MC %.4g", p05, mc.Q05)
	}
	if math.Abs(p95-mc.Q95)/mc.Q95 > 0.06 {
		t.Errorf("q95: lognormal %.4g vs MC %.4g", p95, mc.Q95)
	}
}
