package chipmc

import (
	"errors"
	"math"
	"testing"

	"leakest/internal/fault"
	"leakest/internal/fft"
	"leakest/internal/lkerr"
	"leakest/internal/randvar"
	"leakest/internal/stats"
)

// TestQMCDeterminism is the §9 contract extended to the qmc sampler: on
// both trial bodies the per-trial totals must be bitwise identical at any
// worker count AND any batch size (the two knobs that regroup work without
// being allowed to change it). Run with -race this doubles as the qmc race
// hammer.
func TestQMCDeterminism(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	for _, path := range []string{"dense", "grid"} {
		if path == "grid" {
			old := autoDenseLimit
			autoDenseLimit = 8 // route the 100-gate design to the grid body
			defer func() { autoDenseLimit = old }()
		}
		var ref Result
		first := true
		for _, workers := range []int{1, 4, 8} {
			for _, batch := range []int{0, 1, 3, 8, 64} {
				cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 121,
					Seed: 8, Sampler: SamplerQMC, Workers: workers, Batch: batch,
					KeepTrials: true, IncludeVt: true}
				got, err := Run(cfg, nl, pl)
				if err != nil {
					t.Fatalf("%s workers=%d batch=%d: %v", path, workers, batch, err)
				}
				if first {
					ref, first = got, false
					continue
				}
				if got.Mean != ref.Mean || got.Std != ref.Std {
					t.Fatalf("%s workers=%d batch=%d changed moments: µ %v vs %v, σ %v vs %v",
						path, workers, batch, got.Mean, ref.Mean, got.Std, ref.Std)
				}
				for i := range ref.Trials {
					if got.Trials[i] != ref.Trials[i] {
						t.Fatalf("%s workers=%d batch=%d: trial %d differs bitwise",
							path, workers, batch, i)
					}
				}
			}
		}
	}
}

// TestQMCMatchesDense is the package-level unbiasedness smoke: both qmc
// trial bodies estimate the same distribution as the frozen dense referee,
// so the moments must agree within z·(combined SE). The conformance suite
// (internal/conformance RunQMC) is the rigorous version with convergence
// gates; this catches gross bias cheaply.
func TestQMCMatchesDense(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 2000, Seed: 21}
	dcfg := base
	dcfg.Sampler = SamplerDense
	dense, err := Run(dcfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"dense", "grid"} {
		qcfg := base
		qcfg.Sampler = SamplerQMC
		if path == "grid" {
			old := autoDenseLimit
			autoDenseLimit = 8
			qmc, err := Run(qcfg, nl, pl)
			autoDenseLimit = old
			if err != nil {
				t.Fatal(err)
			}
			checkQMCMoments(t, path, qmc, dense)
			continue
		}
		qmc, err := Run(qcfg, nl, pl)
		if err != nil {
			t.Fatal(err)
		}
		checkQMCMoments(t, path, qmc, dense)
	}
}

func checkQMCMoments(t *testing.T, path string, qmc, dense Result) {
	t.Helper()
	t.Logf("%s-qmc: µ=%.5g σ=%.5g | dense: µ=%.5g σ=%.5g", path, qmc.Mean, qmc.Std, dense.Mean, dense.Std)
	const z = 5
	meanTol := z * math.Hypot(dense.MeanSE(), qmc.MeanSE())
	if d := math.Abs(qmc.Mean - dense.Mean); d > meanTol {
		t.Errorf("%s-qmc mean %.6g vs dense %.6g: |Δ| = %.3g > %.3g", path, qmc.Mean, dense.Mean, d, meanTol)
	}
	stdTol := z * math.Hypot(dense.StdSE(), qmc.StdSE())
	if d := math.Abs(qmc.Std - dense.Std); d > stdTol {
		t.Errorf("%s-qmc σ %.6g vs dense %.6g: |Δ| = %.3g > %.3g", path, qmc.Std, dense.Std, d, stdTol)
	}
}

// TestQMCEmbeddingFailureFallsBackToDenseQMC mirrors the auto-mode
// degradation for qmc: an injected embedding failure on a design within the
// explicit gate budget degrades to the dense-qmc body (same low-discrepancy
// stream, dense field) instead of erroring; without a budget it surfaces as
// a typed Numerical error.
func TestQMCEmbeddingFailureFallsBackToDenseQMC(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	old := autoDenseLimit
	autoDenseLimit = 8
	defer func() { autoDenseLimit = old }()

	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 50, Seed: 3,
		Sampler: SamplerQMC, MaxGates: 128, KeepTrials: true}

	// The dense-qmc reference the fallback must reproduce bitwise: same
	// config with the grid threshold left alone (64 ≤ 4000 routes dense).
	autoDenseLimit = old
	want, err := Run(cfg, nl, pl)
	autoDenseLimit = 8
	if err != nil {
		t.Fatal(err)
	}

	fault.Arm(fault.SiteFFTSetup, fault.Action{Kind: fault.Error})
	got, err := Run(cfg, nl, pl)
	fault.Reset()
	if err != nil {
		t.Fatalf("qmc run with injected embedding failure: %v", err)
	}
	for i := range want.Trials {
		if got.Trials[i] != want.Trials[i] {
			t.Fatalf("fallback trial %d differs from dense-qmc reference", i)
		}
	}

	// No budget → typed error, not a silent fallback.
	nocap := cfg
	nocap.MaxGates = 0
	fault.Arm(fault.SiteFFTSetup, fault.Action{Kind: fault.Error})
	_, err = Run(nocap, nl, pl)
	fault.Reset()
	if !errors.Is(err, lkerr.ErrNumerical) {
		t.Fatalf("qmc embedding failure without budget: got %v, want typed Numerical", err)
	}
}

// TestQMCConfigValidation pins the new config surface: negative Batch and
// unknown degrade modes are typed InvalidInput errors.
func TestQMCConfigValidation(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 16)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 20, Seed: 1,
		Sampler: SamplerQMC}
	cfg.Batch = -1
	if _, err := Run(cfg, nl, pl); !errors.Is(err, lkerr.ErrInvalidInput) {
		t.Errorf("negative Batch: got %v, want typed InvalidInput", err)
	}
	cfg.Batch = 0
	cfg.QMCDegrade = "bogus"
	if _, err := Run(cfg, nl, pl); !errors.Is(err, lkerr.ErrInvalidInput) {
		t.Errorf("unknown QMCDegrade: got %v, want typed InvalidInput", err)
	}
}

// TestQMCDegradeChangesStream: the conformance self-check hinges on the
// degrade modes actually producing different trial streams — a degrade that
// silently fell through to the healthy sequence would make the self-check
// vacuous.
func TestQMCDegradeChangesStream(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 40, Seed: 9,
		Sampler: SamplerQMC, KeepTrials: true}
	healthy, err := Run(base, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"unscrambled", "pseudo"} {
		cfg := base
		cfg.QMCDegrade = mode
		got, err := Run(cfg, nl, pl)
		if err != nil {
			t.Fatalf("degrade %q: %v", mode, err)
		}
		same := true
		for i := range healthy.Trials {
			if got.Trials[i] != healthy.Trials[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("degrade %q reproduced the healthy trial stream", mode)
		}
	}
}

// TestQMCTrialBodyAllocs pins the batched grid trial body at zero
// allocations once a worker's buffers are warm, mirroring
// TestTrialBodyAllocs for the pseudo-random paths: the pin exercises
// exactly the per-batch sequence runQMCGrid runs — spectrum fill, Sobol
// point, mode substitution, batched inverse FFT, pair extraction, and the
// two chip-total evaluations.
func TestQMCTrialBodyAllocs(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, IncludeVt: true}
	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := randvar.NewGridSampler(proc, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	modes := gs.TopModes((randvar.SobolMaxDims - 2) / 2)
	qdims := 2 + 2*len(modes)
	seq, err := randvar.NewSobol(qdims, 42)
	if err != nil {
		t.Fatal(err)
	}
	const batchPairs = 4
	tm, tn := gs.TorusDims()
	tlen := gs.TorusLen()
	b := qmcGridBuf{
		rng:     stats.NewRNG(1, "qmc-alloc-pair"),
		trng:    stats.NewRNG(1, "qmc-alloc-trial"),
		toruses: make([]complex128, batchPairs*tlen),
		scratch: make([]complex128, fft.Scratch2DLen(tm, tn)),
		zq:      make([]float64, qdims),
		z0:      make([]float64, 2*batchPairs),
		fa:      make([]float64, gs.Grid().Sites()),
		fb:      make([]float64, gs.Grid().Sites()),
		ls:      make([]float64, len(gates)),
	}
	pairStream := stats.NewStream(cfg.Seed, "chipmc/alloc/qpair#")
	trialStream := stats.NewStream(cfg.Seed, "chipmc/alloc/trial#")
	sink := 0.0
	bi := 0
	body := func() {
		p0 := bi * batchPairs
		for j := 0; j < batchPairs; j++ {
			p := p0 + j
			torus := b.toruses[j*tlen : (j+1)*tlen]
			b.rng.Seed(pairStream.SeedFor(p))
			gs.FillPairSpectrum(b.rng, torus)
			seq.NormalsInto(uint32(p), b.zq)
			b.z0[2*j], b.z0[2*j+1] = b.zq[0], b.zq[1]
			for m, k := range modes {
				gs.SetMode(torus, k, b.zq[2+2*m], b.zq[3+2*m])
			}
		}
		if err := fft.Transform2DBatchInto(b.toruses, batchPairs, tm, tn, true, b.scratch); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < batchPairs; j++ {
			p := p0 + j
			gs.ExtractPair(b.toruses[j*tlen:(j+1)*tlen], b.z0[2*j], b.z0[2*j+1], b.fa, b.fb)
			for c := 0; c < 2; c++ {
				f := b.fa
				if c == 1 {
					f = b.fb
				}
				for g, s := range pl.Site {
					b.ls[g] = f[s]
				}
				b.trng.Seed(trialStream.SeedFor(2*p + c))
				sink += chipTotal(gates, b.trng, b.ls, proc.SigmaVt)
			}
		}
		bi++
	}
	body() // warm
	if allocs := testing.AllocsPerRun(50, body); allocs != 0 {
		t.Errorf("qmc batch body allocates %.1f times per batch, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("NaN chip total")
	}
}
