package chipmc

import (
	"context"
	"errors"
	"math"
	"testing"

	"leakest/internal/core"
	"leakest/internal/lkerr"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/randvar"
	"leakest/internal/spatial"
	"leakest/internal/stats"
)

func TestParseSampler(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Sampler
	}{{"auto", SamplerAuto}, {"dense", SamplerDense}, {"fft", SamplerFFT}, {"qmc", SamplerQMC}} {
		got, err := ParseSampler(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSampler(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("Sampler(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParseSampler("cholesky"); err == nil {
		t.Error("unknown sampler name accepted")
	}
	if _, err := Run(Config{Sampler: Sampler(9)}, &netlist.Netlist{Name: "x",
		Gates: []netlist.Gate{{Type: "INV_X1"}}}, &placement.Placement{Site: []int{0}}); err == nil {
		t.Error("invalid Sampler value accepted")
	}
}

// The FFT sampler draws from the same distribution as the dense referee:
// both moments must agree within z·(combined standard error) on a shared
// design. This is the package-level version of the conformance gate.
func TestFFTSamplerMatchesDense(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 225)
	const samples = 2500
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: samples, Seed: 21}
	dcfg := base
	dcfg.Sampler = SamplerDense
	fcfg := base
	fcfg.Sampler = SamplerFFT
	dense, err := Run(dcfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	fft, err := Run(fcfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dense: µ=%.5g σ=%.5g | fft: µ=%.5g σ=%.5g", dense.Mean, dense.Std, fft.Mean, fft.Std)
	const z = 5
	meanTol := z * math.Hypot(dense.MeanSE(), fft.MeanSE())
	if d := math.Abs(fft.Mean - dense.Mean); d > meanTol {
		t.Errorf("FFT mean %.6g vs dense %.6g: |Δ| = %.3g > %.3g", fft.Mean, dense.Mean, d, meanTol)
	}
	stdTol := z * math.Hypot(dense.StdSE(), fft.StdSE())
	if d := math.Abs(fft.Std - dense.Std); d > stdTol {
		t.Errorf("FFT σ %.6g vs dense %.6g: |Δ| = %.3g > %.3g", fft.Std, dense.Std, d, stdTol)
	}
}

// Acceptance check for the grid fast path: a 100,000-gate design — 25× the
// dense limit — completes with the FFT sampler and its moments agree with
// the analytic O(n) estimator within z·SE.
func TestFFTSampler100kGates(t *testing.T) {
	lib, _, _, _ := testSetup(t, 4)
	base := spatial.Default90nm()
	proc := &spatial.Process{
		LNominal: base.LNominal,
		SigmaD2D: base.SigmaD2D,
		SigmaWID: base.SigmaWID,
		SigmaVt:  base.SigmaVt,
		WIDCorr:  spatial.TruncatedExpCorr{Lambda: 20, R: 80},
	}
	const n = 100000
	hist, _ := stats.NewHistogram(map[string]float64{"INV_X1": 2, "NAND2_X1": 2, "NOR2_X1": 1})
	byName := map[string]int{}
	for _, cc := range lib.Cells {
		byName[cc.Name] = cc.NumInputs
	}
	rng := stats.NewRNG(17, "chipmc-100k")
	nl, err := netlist.RandomCircuit(rng, "mc-100k", n, 8, hist,
		func(typ string) (int, error) { return byName[typ], nil })
	if err != nil {
		t.Fatal(err)
	}
	// A wide aspect keeps the embedding torus at 512×1024 rather than the
	// 1024×1024 a square 317×317 grid would force.
	grid, err := placement.NewGrid(n, 2, 2, 2.6)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placement.Random(rng, grid, n)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 48, Seed: 23,
		Sampler: SamplerFFT}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.ExtractSpec(nl, pl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.NewModel(lib, proc, spec, MCMode())
	if err != nil {
		t.Fatal(err)
	}
	lin, err := model.EstimateLinear()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fft MC (%d trials): µ=%.5g σ=%.5g | linear: µ=%.5g σ=%.5g",
		mc.Samples, mc.Mean, mc.Std, lin.Mean, lin.Std)
	const z = 5
	if d := math.Abs(mc.Mean - lin.Mean); d > z*mc.MeanSE() {
		t.Errorf("100k mean: MC %.6g vs linear %.6g (|Δ| = %.3g > %.3g)",
			mc.Mean, lin.Mean, d, z*mc.MeanSE())
	}
	// σ carries both MC sampling error and the linear estimator's grid
	// regrouping error (~1%); z·StdSE dominates at this trial count.
	if d := math.Abs(mc.Std - lin.Std); d > z*mc.StdSE()+0.02*lin.Std {
		t.Errorf("100k σ: MC %.6g vs linear %.6g (|Δ| = %.3g > %.3g)",
			mc.Std, lin.Std, d, z*mc.StdSE()+0.02*lin.Std)
	}
	// The dense sampler must refuse a design this size.
	_, err = Run(Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 48,
		Sampler: SamplerDense}, nl, pl)
	if !errors.Is(err, lkerr.ErrBudgetExceeded) {
		t.Errorf("dense sampler accepted 100k gates: %v", err)
	}
}

// Worker count must not change FFT-sampler results: per-trial PRNG streams
// plus a serial reduction make the run bitwise reproducible.
func TestFFTSamplerWorkerInvariance(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 120, Seed: 8,
		Sampler: SamplerFFT, KeepTrials: true}
	cfg.Workers = 1
	serial, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Mean != par.Mean || serial.Std != par.Std {
		t.Fatalf("worker count changed FFT results: µ %v vs %v, σ %v vs %v",
			serial.Mean, par.Mean, serial.Std, par.Std)
	}
	for i := range serial.Trials {
		if serial.Trials[i] != par.Trials[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

// The dense path must remain bitwise identical to its historical behaviour:
// auto (which routes small designs to dense) and explicit dense agree
// exactly, and the hoisted RNG-stream derivation reproduces the per-trial
// draws of the old fmt.Sprintf keying (cross-checked in internal/stats).
func TestAutoMatchesDenseBitwise(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 64)
	base := Config{Lib: lib, Proc: proc, SignalProb: 0.5, Samples: 300, Seed: 31, KeepTrials: true}
	auto := base
	expl := base
	expl.Sampler = SamplerDense
	a, err := Run(auto, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(expl, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != d.Mean || a.Std != d.Std || a.Q05 != d.Q05 || a.Q95 != d.Q95 {
		t.Errorf("auto and explicit dense disagree: %+v vs %+v", a, d)
	}
	for i := range a.Trials {
		if a.Trials[i] != d.Trials[i] {
			t.Fatalf("trial %d differs between auto and dense", i)
		}
	}
}

// Satellite regression guard: the per-trial body allocates nothing once a
// worker's buffers are warm, on both sampler paths. The historical loop
// allocated a fmt.Sprintf key and a fresh PRNG per trial.
func TestTrialBodyAllocs(t *testing.T) {
	lib, proc, nl, pl := testSetup(t, 100)
	cfg := Config{Lib: lib, Proc: proc, SignalProb: 0.5, IncludeVt: true}
	gates, err := buildGateStates(cfg, nl)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := newDenseSampler(context.Background(), cfg, len(nl.Gates), pl)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"dense", "fft"} {
		runner := &trialRunner{
			gates:   gates,
			stream:  stats.NewStream(cfg.Seed, "chipmc/"+nl.Name+"/trial#"),
			sigmaVt: proc.SigmaVt,
			bufs:    make([]trialBuf, 1),
		}
		if mode == "dense" {
			runner.dense = dense
		} else {
			gs, err := randvar.NewGridSampler(proc, pl.Grid)
			if err != nil {
				t.Fatal(err)
			}
			runner.grid = gs
			runner.sites = pl.Site
		}
		if _, err := runner.runTrial(0, 0); err != nil { // warm the buffers
			t.Fatal(err)
		}
		trial := 1
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := runner.runTrial(0, trial); err != nil {
				t.Fatal(err)
			}
			trial++
		})
		if allocs != 0 {
			t.Errorf("%s trial body allocates %.1f times per trial, want 0", mode, allocs)
		}
	}
}
