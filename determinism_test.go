package leakest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"leakest/internal/cells"
	"leakest/internal/charlib"
	"leakest/internal/chipmc"
	"leakest/internal/fault"
)

// workerSweep is the pool-size grid of the determinism suite: the serial
// reference, an even and an odd (non-divisor) count, and whatever this host
// defaults to.
func workerSweep() []int {
	sweep := []int{1, 2, 7}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 7 {
		sweep = append(sweep, g)
	}
	return sweep
}

// TestDeterminismEstimatorsAcrossWorkers locks down the tentpole's hard
// requirement for the two analytic loops: the O(n²) truth and the O(n)
// linear estimator must be bitwise identical at every worker count.
func TestDeterminismEstimatorsAcrossWorkers(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	design := Design{Hist: coreHist(t), N: 2500, W: 100, H: 100, SignalProb: 0.5}

	var refTruth, refLin Result
	for i, w := range workerSweep() {
		est, err := NewEstimator(lib, nil)
		if err != nil {
			t.Fatal(err)
		}
		est.Workers = w

		truth, err := est.TrueLeakageContext(context.Background(), nl, pl, 0.5)
		if err != nil {
			t.Fatalf("workers=%d: truth: %v", w, err)
		}
		coreEst := coreEstimator(t)
		coreEst.Workers = w
		lin, err := coreEst.EstimateContext(context.Background(), design, Linear)
		if err != nil {
			t.Fatalf("workers=%d: linear: %v", w, err)
		}
		if i == 0 {
			refTruth, refLin = truth, lin
			continue
		}
		if truth.Mean != refTruth.Mean || truth.Std != refTruth.Std {
			t.Errorf("workers=%d: truth (%v, %v) != serial (%v, %v)",
				w, truth.Mean, truth.Std, refTruth.Mean, refTruth.Std)
		}
		if lin.Mean != refLin.Mean || lin.Std != refLin.Std {
			t.Errorf("workers=%d: linear (%v, %v) != serial (%v, %v)",
				w, lin.Mean, lin.Std, refLin.Mean, refLin.Std)
		}
	}
}

// TestDeterminismMonteCarloAcrossWorkers asserts the strongest property of
// the per-trial PRNG streams: not just the summary moments but the entire
// per-trial total sequence is bitwise identical at every worker count.
func TestDeterminismMonteCarloAcrossWorkers(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w int) chipmc.Result {
		res, err := chipmc.RunContext(context.Background(), chipmc.Config{
			Lib: lib, Proc: lib.Process, SignalProb: 0.5,
			Samples: 60, Seed: 11, IncludeVt: true,
			Workers: w, KeepTrials: true,
		}, nl, pl)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(res.Trials) != 60 {
			t.Fatalf("workers=%d: kept %d trials, want 60", w, len(res.Trials))
		}
		return res
	}
	ref := run(1)
	for _, w := range workerSweep()[1:] {
		got := run(w)
		if got.Mean != ref.Mean || got.Std != ref.Std || got.Q05 != ref.Q05 || got.Q95 != ref.Q95 {
			t.Errorf("workers=%d: summary %+v != serial %+v", w, got, ref)
		}
		for i := range ref.Trials {
			if got.Trials[i] != ref.Trials[i] {
				t.Fatalf("workers=%d: trial %d total %v != serial %v — MC streams diverged",
					w, i, got.Trials[i], ref.Trials[i])
			}
		}
	}
}

// TestDeterminismCharacterizationAcrossWorkers deep-compares every
// characterized quantity of every (cell, state) across worker counts.
func TestDeterminismCharacterizationAcrossWorkers(t *testing.T) {
	run := func(w int) *Library {
		lib, err := CharacterizeContext(context.Background(), cells.CoreSubset(), CharConfig{
			Process: DefaultProcess(), MCSamples: 500, Seed: 1, Workers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return lib
	}
	ref := run(1)
	for _, w := range workerSweep()[1:] {
		got := run(w)
		if len(got.Cells) != len(ref.Cells) {
			t.Fatalf("workers=%d: %d cells != %d", w, len(got.Cells), len(ref.Cells))
		}
		for ci := range ref.Cells {
			rc, gc := &ref.Cells[ci], &got.Cells[ci]
			if gc.Name != rc.Name || len(gc.States) != len(rc.States) {
				t.Fatalf("workers=%d: cell %d is %s/%d states, want %s/%d",
					w, ci, gc.Name, len(gc.States), rc.Name, len(rc.States))
			}
			for si := range rc.States {
				rs, gs := &rc.States[si], &gc.States[si]
				if gs.State != rs.State ||
					gs.MCMean != rs.MCMean || gs.MCStd != rs.MCStd ||
					gs.A != rs.A || gs.B != rs.B || gs.C != rs.C ||
					gs.FitMean != rs.FitMean || gs.FitStd != rs.FitStd {
					t.Errorf("workers=%d: %s state %d differs from serial", w, rc.Name, rs.State)
				}
				for k := range rs.GridLnI {
					if gs.GridLnI[k] != rs.GridLnI[k] || gs.GridL[k] != rs.GridL[k] {
						t.Errorf("workers=%d: %s state %d grid point %d differs",
							w, rc.Name, rs.State, k)
						break
					}
				}
			}
		}
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, failing the test if pool workers leak past a fan-out.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines settled at %d, baseline %d — pool workers leaked",
		runtime.NumGoroutine(), baseline)
}

// TestParallelMonteCarloCancellation cancels mid-fan-out at workers > 1 and
// asserts the three pipeline guarantees survive the pool: a prompt typed
// error, no leaked goroutines, and a final progress report for the stage.
func TestParallelMonteCarloCancellation(t *testing.T) {
	defer fault.Reset()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	est.Workers = 4
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	fault.Arm(fault.SiteChipMCTrial, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	var rec progressRecorder
	ctx, cancel := context.WithTimeout(rec.ctx(), 40*time.Millisecond)
	defer cancel()
	_, err = est.MonteCarloContext(ctx, nl, pl, 0.5, 2000, 1)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want typed DeadlineExceeded", err)
	}
	settleGoroutines(t, baseline)
	final := rec.finalFor(t, "chipmc.trials")
	if final.Done >= final.Total {
		t.Errorf("final report %+v claims completion despite the deadline", final)
	}
}

// TestParallelTruthCancellation is the same contract for the O(n²) rows.
func TestParallelTruthCancellation(t *testing.T) {
	defer fault.Reset()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	est.Workers = 4
	nl, pl, err := ISCASCircuit(lib, "c880", 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	fault.Arm(fault.SiteTruthRow, fault.Action{Kind: fault.Sleep, Delay: 2 * time.Millisecond})
	var rec progressRecorder
	ctx, cancel := context.WithTimeout(rec.ctx(), 40*time.Millisecond)
	defer cancel()
	_, err = est.TrueLeakageContext(ctx, nl, pl, 0.5)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want typed DeadlineExceeded", err)
	}
	settleGoroutines(t, baseline)
	final := rec.finalFor(t, "core.truth")
	if final.Done >= final.Total {
		t.Errorf("final report %+v claims completion despite the deadline", final)
	}
}

// TestParallelFaultPanicStaysTyped re-checks the robustness contract inside
// the pool: an injected panic on a worker goroutine must cross back to the
// caller and surface as a typed Numerical error, never crash the process.
func TestParallelFaultPanicStaysTyped(t *testing.T) {
	defer fault.Reset()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	est.Workers = 4
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(fault.SiteChipMCTrial, fault.Action{Kind: fault.Panic, After: 10})
	_, err = est.MonteCarloContext(context.Background(), nl, pl, 0.5, 200, 1)
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("err = %v, want typed Numerical from the in-pool panic", err)
	}
}

// TestWorkersFieldIndependence double-checks the plumbing: an absurd worker
// count must change nothing but wall-clock.
func TestWorkersFieldIndependence(t *testing.T) {
	est := coreEstimator(t)
	design := Design{Hist: coreHist(t), N: 1200, W: 80, H: 80, SignalProb: 0.5}
	ref, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	est.Workers = 64
	got, err := est.Estimate(design, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mean != ref.Mean || got.Std != ref.Std {
		t.Errorf("workers=64 result (%v, %v) != default (%v, %v)",
			got.Mean, got.Std, ref.Mean, ref.Std)
	}
	if fmt.Sprintf("%x %x", got.Mean, got.Std) != fmt.Sprintf("%x %x", ref.Mean, ref.Std) {
		t.Errorf("bit patterns differ")
	}
}

// TestDeterminismTailAcrossWorkers extends the MC contract to the tail
// stage: quantiles, the plain exceedance, and the importance-sampled
// accumulation (weights, ESS diagnostics, tilt) must all be bitwise
// identical at every worker count — the IS weight reduction runs serially
// in trial order over owned per-trial slots, exactly like the moments.
func TestDeterminismTailAcrossWorkers(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Spec near the observed P95 so both the plain and the IS estimators
	// see hits at this trial budget.
	probe, err := chipmc.RunContext(context.Background(), chipmc.Config{
		Lib: lib, Proc: lib.Process, SignalProb: 0.5,
		Samples: 200, Seed: 11, KeepTrials: true,
	}, nl, pl)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w int) *chipmc.TailStats {
		res, err := chipmc.RunContext(context.Background(), chipmc.Config{
			Lib: lib, Proc: lib.Process, SignalProb: 0.5,
			Samples: 100, Seed: 11, IncludeVt: true, Workers: w,
			Tail: &chipmc.TailConfig{
				Spec:      probe.Q95,
				Quantiles: []float64{0.5, 0.95, 0.99},
				ISTrials:  120,
			},
		}, nl, pl)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Tail == nil {
			t.Fatalf("workers=%d: no tail stats", w)
		}
		return res.Tail
	}
	ref := run(1)
	if ref.ISHits == 0 {
		t.Fatal("tail determinism fixture produced no IS hits; spec placed wrong")
	}
	for _, w := range workerSweep()[1:] {
		got := run(w)
		if got.P != ref.P || got.SE != ref.SE || got.Source != ref.Source {
			t.Errorf("workers=%d: exceedance (%v, %v, %s) != serial (%v, %v, %s)",
				w, got.P, got.SE, got.Source, ref.P, ref.SE, ref.Source)
		}
		if got.MCP != ref.MCP || got.MCHits != ref.MCHits {
			t.Errorf("workers=%d: plain exceedance diverged", w)
		}
		if got.Shift != ref.Shift || got.ESS != ref.ESS || got.HitESS != ref.HitESS || got.ISHits != ref.ISHits {
			t.Errorf("workers=%d: IS diagnostics (θ=%v ESS=%v hitESS=%v hits=%d) != serial (θ=%v ESS=%v hitESS=%v hits=%d)",
				w, got.Shift, got.ESS, got.HitESS, got.ISHits, ref.Shift, ref.ESS, ref.HitESS, ref.ISHits)
		}
		for i := range ref.Quantiles {
			if got.Quantiles[i] != ref.Quantiles[i] {
				t.Fatalf("workers=%d: quantile %d %+v != serial %+v", w, i, got.Quantiles[i], ref.Quantiles[i])
			}
		}
	}
}

// TestTailAccumulatorRaceHammer drives the tail stage with many workers
// over many concurrent runs; under -race this hammers the shared tail
// accumulators (per-trial total and deviate slots, the telemetry counters
// and the ESS gauge) for write races.
func TestTailAccumulatorRaceHammer(t *testing.T) {
	lib, err := charlib.SharedISCAS()
	if err != nil {
		t.Fatal(err)
	}
	nl, pl, err := ISCASCircuit(lib, "c432", 5)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 4
	errs := make(chan error, runs)
	for r := 0; r < runs; r++ {
		go func(seed int64) {
			res, err := chipmc.RunContext(context.Background(), chipmc.Config{
				Lib: lib, Proc: lib.Process, SignalProb: 0.5,
				Samples: 60, Seed: seed, Workers: 7,
				Tail: &chipmc.TailConfig{
					Spec:      1e-6,
					Quantiles: []float64{0.5, 0.99},
					ISTrials:  80,
				},
			}, nl, pl)
			if err == nil && res.Tail == nil {
				err = errors.New("no tail stats")
			}
			errs <- err
		}(int64(r + 1))
	}
	for r := 0; r < runs; r++ {
		if err := <-errs; err != nil {
			t.Errorf("run %d: %v", r, err)
		}
	}
}
