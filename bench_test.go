package leakest

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md's experiment index). Each benchmark regenerates the artifact
// through the drivers in internal/experiments at a paper-comparable scale
// and reports the headline error metric; run with -v to see the full
// tables. cmd/paperfigs runs the same drivers at full scale with complete
// textual output.

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"leakest/internal/charlib"
	"leakest/internal/core"
	"leakest/internal/experiments"
	"leakest/internal/netlist"
	"leakest/internal/placement"
	"leakest/internal/stats"
	"leakest/internal/telemetry"
)

// envWorkers reads the LEAKEST_WORKERS override so CI can run the whole
// benchmark suite at a fixed pool size (see the Makefile bench target);
// 0 keeps each benchmark's default.
func envWorkers(b *testing.B) int {
	b.Helper()
	s := os.Getenv("LEAKEST_WORKERS")
	if s == "" {
		return 0
	}
	w, err := strconv.Atoi(s)
	if err != nil || w < 0 {
		b.Fatalf("bad LEAKEST_WORKERS=%q", s)
	}
	return w
}

func benchLib(b *testing.B) *charlib.Library {
	b.Helper()
	lib, err := charlib.SharedISCAS()
	if err != nil {
		b.Fatal(err)
	}
	return lib
}

func benchHist(b *testing.B) *stats.Histogram {
	b.Helper()
	h, err := stats.NewHistogram(map[string]float64{
		"INV_X1": 25, "BUF_X1": 5, "NAND2_X1": 25, "NAND3_X1": 8,
		"NOR2_X1": 15, "AND2_X1": 12, "OR2_X1": 6, "XOR2_X1": 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// lastNotePct extracts the first percentage appearing in a note line.
func lastNotePct(b *testing.B, note string) float64 {
	b.Helper()
	for _, tok := range strings.Fields(note) {
		tok = strings.TrimSuffix(strings.TrimSuffix(tok, ","), "%")
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			return v
		}
	}
	b.Fatalf("no percentage in note %q", note)
	return 0
}

// BenchmarkCellAccuracy regenerates the §2.1.2 cell-model accuracy check
// (E1): analytical (a,b,c)+MGF moments vs Monte Carlo, all cells and
// states. Paper: mean err avg 0.44 % (max < 2 %), σ err avg 3.1 % (max
// ≈ 10 %).
func BenchmarkCellAccuracy(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.CellAccuracy(lib)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(lastNotePct(b, t.Notes[0]), "avg-mean-err-%")
			b.ReportMetric(lastNotePct(b, t.Notes[1]), "avg-std-err-%")
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (E2): leakage correlation vs
// channel-length correlation, MC vs the analytic f_{m,n} mapping.
func BenchmarkFig2(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig2(experiments.Fig2Config{Lib: lib, MCSamples: 30000, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(lastNotePct(b, t.Notes[0]), "max-dev-from-yx")
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (E3): full-chip mean leakage vs
// signal probability for several cell-usage profiles.
func BenchmarkFig3(b *testing.B) {
	lib := benchLib(b)
	nandHeavy, _ := stats.NewHistogram(map[string]float64{"NAND2_X1": 4, "NAND3_X1": 2, "INV_X1": 2})
	norHeavy, _ := stats.NewHistogram(map[string]float64{"NOR2_X1": 5, "INV_X1": 2, "OR2_X1": 1})
	balanced := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig3(experiments.Fig3Config{
			Lib: lib,
			Profiles: map[string]*stats.Histogram{
				"nand-heavy": nandHeavy, "nor-heavy": norHeavy, "balanced": balanced,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (E4): maximum deviation of random
// circuits' true statistics from the RG estimate, shrinking with size up
// to the paper's 106² = 11 236 gates.
func BenchmarkFig6(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig6(experiments.Fig6Config{
			Lib:   lib,
			Hist:  hist,
			Sides: []int{10, 21, 45, 71, 106},
			Reps:  5,
			Seed:  6,
			Mode:  core.Analytic,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(lastNotePct(b, t.Notes[0]), "envelope@11236-%")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (E5): late-mode RG estimation error
// against the O(n²) true leakage on the nine ISCAS85 circuits. Paper:
// 0.23 %–1.38 % σ error.
func BenchmarkTable1(b *testing.B) {
	lib := benchLib(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table1(experiments.Table1Config{Lib: lib, Seed: 1, Mode: core.Analytic})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(lastNotePct(b, t.Notes[0]), "worst-std-err-%")
		}
	}
}

// BenchmarkSimplifiedCorr regenerates the §3.1.2 check (E6): the error of
// assuming ρ_leak = ρ_L instead of the exact mapping, WID-only and
// WID+D2D. Paper: below 2.8 %.
func BenchmarkSimplifiedCorr(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.SimplifiedCorr(experiments.SimplifiedCorrConfig{
			Lib: lib, Hist: hist, Sides: []int{32, 71},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(lastNotePct(b, t.Notes[0]), "worst-err-%")
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (E7): % error between the
// constant-time integration and the linear-time algorithm across circuit
// sizes. Paper: > 1 % below ~100 gates, < 0.01 % beyond 10⁴.
func BenchmarkFig7(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig7(experiments.Fig7Config{
			Lib:   lib,
			Hist:  hist,
			Sides: []int{5, 8, 16, 32, 71, 106, 178, 316, 562, 1000},
			Mode:  core.Analytic,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkVtAblation regenerates the §2.1 Vt claim (E9): random Vt
// multiplies the mean but leaves the full-chip spread essentially
// unchanged.
func BenchmarkVtAblation(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.VtAblation(experiments.VtAblationConfig{
			Lib: lib, Hist: hist, Sides: []int{16, 32}, Samples: 800, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkNaiveBaseline regenerates the E10 comparison: the early
// no-correlation estimators underestimate σ by a growing factor.
func BenchmarkNaiveBaseline(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.NaiveBaseline(experiments.NaiveBaselineConfig{
			Lib: lib, Hist: hist, Sides: []int{10, 32, 100, 316}, Mode: core.Analytic,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkEstimatorScaling regenerates E11: wall-clock scaling of the
// O(n²), O(n) and O(1) estimators.
func BenchmarkEstimatorScaling(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.Scaling(experiments.ScalingConfig{
			Lib: lib, Hist: hist,
			TrueSides: []int{16, 32},
			FastSides: []int{32, 100, 316, 1000},
			Seed:      3, Mode: core.Analytic,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkGateLeakAblation regenerates the EX1 extension: enabling gate
// tunneling raises the mean and dilutes the relative spread.
func BenchmarkGateLeakAblation(b *testing.B) {
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.GateLeakAblation(experiments.GateLeakConfig{
			Hist: hist, Side: 32, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkFastTrueLeakage measures the tiled approximate truth against the
// exact O(n²) at c7552 scale.
func BenchmarkFastTrueLeakage(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	nl, pl, err := ISCASCircuit(lib, "c7552", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.FastTrueLeakage(nl, pl, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemperatureSweep regenerates EX3: full-chip leakage statistics
// across junction temperature, with per-temperature re-characterization.
func BenchmarkTemperatureSweep(b *testing.B) {
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.TemperatureSweep(experiments.TemperatureConfig{
			Hist: hist, Side: 32, Seed: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkSignalPropagation regenerates EX4: per-net propagated signal
// probabilities vs the uniform abstraction.
func BenchmarkSignalPropagation(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.SignalPropagation(experiments.SigPropConfig{
			Lib: lib, Hist: hist, Side: 32, Seed: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkEstimateLinear measures the raw linear-time estimator on a
// million-gate design (the paper's "order of millions" regime).
func BenchmarkEstimateLinear(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	design := Design{Hist: benchHist(b), N: 1000000, W: 2000, H: 2000, SignalProb: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(design, Linear); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateConstantTime measures the constant-time integral
// estimator on the same million-gate design.
func BenchmarkEstimateConstantTime(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	design := Design{Hist: benchHist(b), N: 1000000, W: 2000, H: 2000, SignalProb: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(design, Integral2D); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrueLeakage measures the O(n²) baseline at ISCAS scale.
func BenchmarkTrueLeakage(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	nl, pl, err := ISCASCircuit(lib, "c880", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.TrueLeakage(nl, pl, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrueLeakageWorkers sweeps the worker-pool size over the O(n²)
// baseline at c7552 scale (3512 gates, ~6.2M pairs) — the speedup table of
// EXPERIMENTS.md. Results are bitwise identical across the sweep; only
// wall-clock may change (and only on multicore hosts).
func BenchmarkTrueLeakageWorkers(b *testing.B) {
	lib := benchLib(b)
	nl, pl, err := ISCASCircuit(lib, "c7552", 1)
	if err != nil {
		b.Fatal(err)
	}
	sweep := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		sweep = append(sweep, g)
	}
	for _, w := range sweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			est, err := NewEstimator(lib, experiments.ChipProcess())
			if err != nil {
				b.Fatal(err)
			}
			est.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.TrueLeakage(nl, pl, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// counterDelta sums the growth of every counter whose full metric name
// starts with base — label variants included — between two registry
// snapshots taken with MetricsSnapshot.
func counterDelta(before, after map[string]any, base string) (float64, string) {
	var total float64
	var topLabel string
	var topDelta float64
	for name, v := range after {
		if name != base && !strings.HasPrefix(name, base+"{") {
			continue
		}
		cur, ok := v.(int64)
		if !ok {
			continue
		}
		prev, _ := before[name].(int64)
		d := float64(cur - prev)
		total += d
		if d > topDelta {
			topDelta = d
			// `base{key="value"}` → value of the first label.
			topLabel = name
			if i := strings.IndexByte(topLabel, '"'); i >= 0 {
				topLabel = topLabel[i+1:]
				if j := strings.IndexByte(topLabel, '"'); j >= 0 {
					topLabel = topLabel[:j]
				}
			}
		}
	}
	return total, topLabel
}

// reportHealthMetrics attaches the run's numerical-health facts to the
// benchmark line (and through cmd/benchjson to BENCH_leakest.json): which
// sampler the MC actually used, how many degradations fired, and how many
// artifact-cache hits were served while the timer ran.
func reportHealthMetrics(b *testing.B, before map[string]any) {
	b.Helper()
	after := MetricsSnapshot()
	if runs, sampler := counterDelta(before, after, "chipmc_sampler_runs_total"); runs > 0 && sampler != "" {
		b.ReportMetric(runs/float64(b.N), "sampler:"+sampler)
	}
	deg, _ := counterDelta(before, after, "degradations_total")
	b.ReportMetric(deg/float64(b.N), "degradations/op")
	hits, _ := counterDelta(before, after, "server_cache_hits_total")
	b.ReportMetric(hits/float64(b.N), "cache-hits/op")
}

// BenchmarkChipMCFFT measures the full-chip Monte Carlo with the
// circulant-embedding FFT sampler on a 10 000-gate placed design — 2.5×
// beyond the dense sampler's gate limit, where the O(S log S) per-trial
// field construction is the only viable path.
func BenchmarkChipMCFFT(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	est.Sampler = SamplerFFT
	nl, err := RandomCircuit(lib, 1, "mc-fft", 10000, 16, benchHist(b))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := AutoPlace(nl, 1)
	if err != nil {
		b.Fatal(err)
	}
	EnableMetrics()
	before := MetricsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.MonteCarlo(nl, pl, 0.5, 64, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHealthMetrics(b, before)
}

// BenchmarkChipMCQMC measures the scrambled-Sobol quasi-Monte-Carlo path
// on the same 10 000-gate placed design as BenchmarkChipMCFFT: trial pair
// fields are batched through one 2-D FFT pass, so the per-trial cost sits
// below the single-field FFT sampler while each trial carries the
// low-discrepancy accuracy the conformance suite gates on.
func BenchmarkChipMCQMC(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	est.Sampler = SamplerQMC
	est.Batch = 16
	nl, err := RandomCircuit(lib, 1, "mc-qmc", 10000, 16, benchHist(b))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := AutoPlace(nl, 1)
	if err != nil {
		b.Fatal(err)
	}
	EnableMetrics()
	before := MetricsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.MonteCarlo(nl, pl, 0.5, 64, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHealthMetrics(b, before)
	// The batch size the sampler actually ran with (the configured value
	// rounded to whole pairs), read back from the telemetry gauge.
	if g, ok := MetricsSnapshot()["chipmc_qmc_batch_size"].(float64); ok && g > 0 {
		b.ReportMetric(g, "batch")
	}
}

// BenchmarkChipMCTail compares plain Monte Carlo against the tilted
// importance sampler at the same deep-tail spec (P ≈ 10⁻³, placed by the
// analytic truth's lognormal fit so both arms measure the same quantity).
// The "is" arm spends 1/20 of the plain arm's trials; each arm reports
// plain-eq-trials — the plain-MC trial count that would match its achieved
// standard error, p(1−p)/SE² — so BENCH_leakest.json records the
// trials-to-target-SE savings directly (is/plain-eq-trials divided by its
// actual total is the variance-reduction factor).
func BenchmarkChipMCTail(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	nl, err := RandomCircuit(lib, 3, "mc-tail", 400, 16, benchHist(b))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := AutoPlace(nl, 3)
	if err != nil {
		b.Fatal(err)
	}
	truth, err := est.TrueLeakage(nl, pl, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := DistributionOf(truth)
	if err != nil {
		b.Fatal(err)
	}
	const pStar = 1e-3
	spec := dist.Quantile(1 - pStar)
	const plainTrials = 40000
	const isPrimary, isTrials = 500, 1500 // 1/20 of the plain arm

	run := func(b *testing.B, samples, tailTrials int) {
		e := *est
		e.Spec = spec
		e.TailTrials = tailTrials
		var tail *TailStats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mc, err := e.MonteCarlo(nl, pl, 0.5, samples, 13)
			if err != nil {
				b.Fatal(err)
			}
			tail = mc.Tail
		}
		b.StopTimer()
		if tail == nil || tail.SE <= 0 {
			b.Fatalf("tail arm returned no usable estimate: %+v", tail)
		}
		b.ReportMetric(tail.P, "p-exceed")
		b.ReportMetric(float64(samples+tailTrials), "trials")
		b.ReportMetric(tail.P*(1-tail.P)/(tail.SE*tail.SE), "plain-eq-trials")
	}
	b.Run("plain", func(b *testing.B) { run(b, plainTrials, 0) })
	b.Run("is", func(b *testing.B) { run(b, isPrimary, isTrials) })
}

// BenchmarkTruthClassed measures the O(n²) truth with the distance-class
// kernel tables at the paper's largest Fig. 6 size (106² = 11 236 gates,
// ~63M pairs): the per-pair kernel chain collapses to an indexed lookup.
func BenchmarkTruthClassed(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	nl, err := RandomCircuit(lib, 2, "truth-classed", 11236, 16, benchHist(b))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := AutoPlace(nl, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.TrueLeakage(nl, pl, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticPlaced builds an n-gate netlist (types round-robin over the
// bench histogram, no wiring — leakage needs only types and sites) with a
// deterministic row-major placement, without going through the random
// circuit generator: at 10⁶ gates the generator's wiring step would
// dominate the benchmark setup.
func syntheticPlaced(b *testing.B, n int) (*Netlist, *Placement) {
	b.Helper()
	types := benchHist(b).Labels()
	gates := make([]netlist.Gate, n)
	for i := range gates {
		gates[i].Type = types[i%len(types)]
	}
	nl := &Netlist{Name: fmt.Sprintf("synthetic-%d", n), NumPI: 1, Gates: gates}
	grid, err := placement.AutoGrid(n)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := placement.RowMajor(grid, n)
	if err != nil {
		b.Fatal(err)
	}
	return nl, pl
}

// BenchmarkChipMCTiled measures the tiled full-chip Monte Carlo at the
// million-gate scale the monolithic FFT sampler refuses: per-tile trial
// fields lift the gate limit to DefaultMaxGatesTiled while the per-worker
// scratch keeps the trial body allocation-free. Reports the tile count and
// the run's peak heap bytes alongside the usual figures.
func BenchmarkChipMCTiled(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	est.Tiles = 8
	nl, pl := syntheticPlaced(b, 1000000)
	tiles := len(placement.Partition(pl.Grid, est.Tiles))
	telemetry.ResetPeakAlloc()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.MonteCarlo(nl, pl, 0.5, 32, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	telemetry.SamplePeakAlloc()
	b.ReportMetric(float64(tiles), "tiles")
	b.ReportMetric(float64(telemetry.PeakAllocBytes()), "peak-bytes")
}

// BenchmarkEstimateStream measures the one-pass streaming estimator at the
// ten-million-gate scale: a writer goroutine serializes a synthetic
// leakest-stream design through a pipe while the reader folds it into
// per-tile gate counts — peak memory stays O(tile) + O(tiles²), never
// O(gates). Reports the tile count and the peak heap bytes of the pass.
func BenchmarkEstimateStream(b *testing.B) {
	lib := benchLib(b)
	est, err := NewEstimator(lib, experiments.ChipProcess())
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	const side, tiles, gates = 3200, 16, 10000000
	types := benchHist(b).Labels()
	telemetry.ResetPeakAlloc()
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(WriteSyntheticStream(pw, "bench-stream",
				side, side, 1.0, 1.0, tiles, types, gates))
		}()
		res, err = est.EstimateStream(context.Background(), pr, 0.5)
		pr.Close()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	telemetry.SamplePeakAlloc()
	b.ReportMetric(float64(len(res.TileStats)), "tiles")
	b.ReportMetric(float64(telemetry.PeakAllocBytes()), "peak-bytes")
}

// BenchmarkGridCompare regenerates EX2: the Random-Gate estimator vs a
// grid-based prior-work spatial model, both against the exact O(n²) σ.
func BenchmarkGridCompare(b *testing.B) {
	lib := benchLib(b)
	hist := benchHist(b)
	for i := 0; i < b.N; i++ {
		t, err := experiments.GridCompare(experiments.GridCompareConfig{
			Lib: lib, Hist: hist, Side: 45, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkFloorplan measures the floorplan-level early estimator on a
// three-block heterogeneous chip (logic + SRAM + registers).
func BenchmarkFloorplan(b *testing.B) {
	lib := benchLib(b)
	proc := experiments.ChipProcess()
	est, err := NewEstimator(lib, proc)
	if err != nil {
		b.Fatal(err)
	}
	est.Workers = envWorkers(b)
	logic := benchHist(b)
	sram, _ := stats.NewHistogram(map[string]float64{"INV_X1": 1, "NAND2_X1": 1})
	blocks := []Block{
		{Name: "logic", Spec: Design{Hist: logic, N: 40000, W: 400, H: 200, SignalProb: 0.5}},
		{Name: "array", Spec: Design{Hist: sram, N: 90000, W: 600, H: 300, SignalProb: 0.5}, X: 420},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateFloorplan(blocks); err != nil {
			b.Fatal(err)
		}
	}
}
